"""N-ary min/max search tree for performance counters (Section VI-B-c).

For each performance counter and each core, Aftermath builds an n-ary
search tree that answers "minimum and maximum counter value in any
interval" without scanning every sample — the key optimization behind
fast counter rendering (each horizontal pixel needs exactly the min and
max of its time sub-interval, Fig. 21).

The paper uses a default arity of 100, which keeps the tree's memory
overhead below 5 % of the sample data itself (the node count of a
geometric series with ratio 1/100 is ~1.01 % of the leaves).
"""

from __future__ import annotations

import numpy as np

DEFAULT_ARITY = 100


def segment_minmax(values, boundaries):
    """Batched (min, max) over a contiguous partition of ``values``.

    ``boundaries`` is a nondecreasing integer array of length ``n + 1``
    with entries in ``[0, len(values)]``; segment ``i`` is
    ``values[boundaries[i]:boundaries[i + 1]]`` — exactly the sample
    ranges the pixel columns of a zoomed view cut out of a sorted
    counter lane.  Returns ``(mins, maxs)`` float arrays of length
    ``n`` with ``NaN`` for empty segments.  One vectorized pass over
    the covered range (``np.minimum.reduceat``) replaces ``n`` scalar
    slice reductions — the batched kernel of the interactive counter
    render.
    """
    values = np.asarray(values, dtype=np.float64)
    boundaries = np.asarray(boundaries, dtype=np.int64)
    count = len(boundaries) - 1
    mins = np.full(count, np.nan, dtype=np.float64)
    maxs = np.full(count, np.nan, dtype=np.float64)
    if count < 1 or len(values) == 0:
        return mins, maxs
    covered = np.diff(boundaries) > 0
    if not covered.any():
        return mins, maxs
    # Restrict to the covered range so reduceat's implicit final
    # segment ends exactly at the last boundary.
    window = values[boundaries[0]:boundaries[-1]]
    offsets = boundaries - boundaries[0]
    last = int(np.nonzero(covered)[0][-1])
    indices = offsets[:last + 1]
    seg_min = np.minimum.reduceat(window, indices)
    seg_max = np.maximum.reduceat(window, indices)
    head = covered[:last + 1]
    mins[:last + 1][head] = seg_min[head]
    maxs[:last + 1][head] = seg_max[head]
    return mins, maxs


class MinMaxTree:
    """Range-min/max over a fixed array of samples.

    ``values`` is the leaf level; each internal level stores the min and
    max of ``arity`` children.  Queries run in O(arity * log_arity(n)).
    """

    def __init__(self, values, arity=DEFAULT_ARITY):
        if arity < 2:
            raise ValueError("arity must be at least 2")
        self.arity = arity
        # Contiguous leaves: strided column views (structured lanes)
        # would push every leaf-level ``reduceat`` onto numpy's slow
        # buffered path — 3-4x the per-frame kernel cost.
        leaves = np.ascontiguousarray(values, dtype=np.float64)
        self._mins = [leaves]
        self._maxs = [leaves]
        while len(self._mins[-1]) > 1:
            self._mins.append(self._reduce(self._mins[-1], np.fmin))
            self._maxs.append(self._reduce(self._maxs[-1], np.fmax))

    @classmethod
    def from_levels(cls, values, mins_levels, maxs_levels,
                    arity=DEFAULT_ARITY):
        """A tree whose internal levels were computed earlier (e.g.
        persisted in the ``.ostc`` sidecar and memory-mapped back).

        ``mins_levels`` / ``maxs_levels`` are the internal levels above
        the leaves, finest first — exactly ``tree._mins[1:]`` /
        ``tree._maxs[1:]`` of the tree :meth:`__init__` would build
        over ``values`` with the same ``arity``.  Level shapes are
        validated (including that the last level is a single root), so
        a sidecar whose pyramid does not match its lane raises instead
        of answering queries wrongly.  No internal level is copied:
        mapped views stay mapped, and none of their pages is faulted
        until a query folds over it.  The leaves are compacted into
        one contiguous float64 array (like :meth:`__init__`): every
        leaf-path query folds over them, and a strided column view
        would put that fold on numpy's slow buffered path.
        """
        if arity < 2:
            raise ValueError("arity must be at least 2")
        if len(mins_levels) != len(maxs_levels):
            raise ValueError("mismatched min/max pyramid levels")
        tree = cls.__new__(cls)
        tree.arity = arity
        leaves = np.ascontiguousarray(values, dtype=np.float64)
        tree._mins = [leaves]
        tree._maxs = [leaves]
        expected = len(leaves)
        for level_mins, level_maxs in zip(mins_levels, maxs_levels):
            expected = (expected + arity - 1) // arity
            if len(level_mins) != expected \
                    or len(level_maxs) != expected:
                raise ValueError(
                    "pyramid level sizes do not match the leaves")
            tree._mins.append(np.asarray(level_mins,
                                         dtype=np.float64))
            tree._maxs.append(np.asarray(level_maxs,
                                         dtype=np.float64))
        if len(tree._mins[-1]) > 1:
            raise ValueError("pyramid is missing its root level")
        return tree

    def _reduce(self, level, combine):
        count = len(level)
        parents = (count + self.arity - 1) // self.arity
        padded = np.full(parents * self.arity, level[0], dtype=np.float64)
        padded[:count] = level
        # Pad the tail with the last value so padding never wins min/max.
        padded[count:] = level[-1]
        reshaped = padded.reshape(parents, self.arity)
        return combine.reduce(reshaped, axis=1)

    def __len__(self):
        return len(self._mins[0])

    @property
    def levels(self):
        """Number of reduction levels above the leaves."""
        return len(self._mins)

    def overhead_fraction(self):
        """Tree nodes as a fraction of the leaf count (paper: <= 5 %)."""
        leaves = len(self._mins[0])
        if leaves == 0:
            return 0.0
        internal = sum(len(level) for level in self._mins[1:])
        return internal / leaves

    def bounds(self):
        """Global (min, max) over all samples in O(1) — the tree root —
        or ``None`` for an empty tree.  This is what makes per-frame
        axis scaling (:func:`repro.render.counter_overlay.value_bounds`)
        free once the tree is memoized on the trace store."""
        if len(self) == 0:
            return None
        return float(self._mins[-1][0]), float(self._maxs[-1][0])

    def _fold_ranges(self, level, lo, hi, acc_min, acc_max):
        """Fold min/max of per-segment ranges ``[lo_k, hi_k)`` of one
        tree level into the accumulators (empty ranges contribute
        nothing).  The ranges' elements are gathered first, so the
        cost is the number of gathered elements, not their span."""
        lengths = hi - lo
        keep = lengths > 0
        if not keep.any():
            return
        range_lo = lo[keep]
        range_len = lengths[keep]
        first = np.cumsum(range_len) - range_len
        flat = (np.arange(int(range_len.sum()))
                - np.repeat(first - range_lo, range_len))
        seg_min = np.minimum.reduceat(self._mins[level][flat], first)
        seg_max = np.maximum.reduceat(self._maxs[level][flat], first)
        acc_min[keep] = np.minimum(acc_min[keep], seg_min)
        acc_max[keep] = np.maximum(acc_max[keep], seg_max)

    def query_segments(self, boundaries):
        """Batched (min, max) over a contiguous partition of the leaves.

        ``boundaries`` is a nondecreasing integer array of length
        ``n + 1`` with values in ``[0, len(self)]``; segment ``i`` is
        ``values[boundaries[i]:boundaries[i + 1]]`` — exactly the
        sample ranges the pixel columns of a zoomed view cut out of a
        sorted counter lane.  Returns ``(mins, maxs)`` float arrays of
        length ``n`` with ``NaN`` for empty segments.

        Small ranges go through one :func:`segment_minmax` pass over
        the leaves; wide ranges walk the tree levels instead — per
        level, each segment contributes at most ``arity - 1`` leading
        and trailing elements (batched through one gather + reduceat)
        and the aligned middle ascends a level, so a zoomed-out frame
        over a huge lane costs O(segments * arity * levels) rather
        than a rescan of every visible sample.
        """
        boundaries = np.asarray(boundaries, dtype=np.int64)
        count = len(boundaries) - 1
        if count < 1 or len(self) == 0:
            return (np.full(max(count, 0), np.nan),
                    np.full(max(count, 0), np.nan))
        span = int(boundaries[-1] - boundaries[0])
        if span <= 2 * count * self.arity:
            # Touching the leaves directly is cheaper than the walk.
            return segment_minmax(self._mins[0], boundaries)
        lo = boundaries[:-1].copy()
        hi = boundaries[1:].copy()
        covered = hi > lo
        acc_min = np.full(count, np.inf, dtype=np.float64)
        acc_max = np.full(count, -np.inf, dtype=np.float64)
        arity = self.arity
        for level in range(self.levels):
            if level == self.levels - 1:
                self._fold_ranges(level, lo, hi, acc_min, acc_max)
                break
            lo_aligned = -(-lo // arity) * arity
            hi_aligned = (hi // arity) * arity
            has_middle = lo_aligned < hi_aligned
            # Unaligned leading/trailing elements stay at this level;
            # the aligned middle becomes whole blocks one level up.
            self._fold_ranges(level, lo,
                              np.where(has_middle, lo_aligned, hi),
                              acc_min, acc_max)
            self._fold_ranges(level, np.where(has_middle, hi_aligned,
                                              hi),
                              hi, acc_min, acc_max)
            if not has_middle.any():
                break
            lo = np.where(has_middle, lo_aligned // arity, 0)
            hi = np.where(has_middle, hi_aligned // arity, 0)
        mins = np.full(count, np.nan, dtype=np.float64)
        maxs = np.full(count, np.nan, dtype=np.float64)
        mins[covered] = acc_min[covered]
        maxs[covered] = acc_max[covered]
        return mins, maxs

    def query(self, lo, hi):
        """(min, max) of ``values[lo:hi]``; raises on an empty range."""
        if lo < 0 or hi > len(self) or lo >= hi:
            raise ValueError("invalid query range [{}, {})".format(lo, hi))
        minimum = np.inf
        maximum = -np.inf
        level = 0
        arity = self.arity
        while lo < hi:
            mins = self._mins[level]
            maxs = self._maxs[level]
            # Consume leading elements until lo is block-aligned.
            while lo % arity != 0 and lo < hi:
                minimum = min(minimum, mins[lo])
                maximum = max(maximum, maxs[lo])
                lo += 1
            # Consume trailing elements until hi is block-aligned.
            while hi % arity != 0 and lo < hi:
                hi -= 1
                minimum = min(minimum, mins[hi])
                maximum = max(maximum, maxs[hi])
            lo //= arity
            hi //= arity
            level += 1
        return float(minimum), float(maximum)


class CounterIndex:
    """Per-(core, counter) min/max trees for a whole trace, built lazily
    on first use (the paper builds them at load time; lazy construction
    gives the same complexity without penalizing unused counters)."""

    def __init__(self, trace, arity=DEFAULT_ARITY):
        self.trace = trace
        self.arity = arity
        self._trees = {}

    def tree(self, core, counter_id):
        """The (lazily built) min/max tree of one (core, counter)."""
        memoized = getattr(self.trace, "minmax_tree", None)
        if memoized is not None:
            # Share the per-(core, counter) trees memoized on the trace
            # store, so repeated zoom/pan frames (and every other
            # CounterIndex over the same trace) reuse one tree.
            return memoized(core, counter_id, arity=self.arity)
        key = (core, counter_id)
        tree = self._trees.get(key)
        if tree is None:
            __, values = self.trace.counter_samples(core, counter_id)
            tree = MinMaxTree(values, arity=self.arity)
            self._trees[key] = tree
        return tree

    def query_time_range(self, core, counter_id, start, end):
        """(min, max) of a counter on a core within the half-open time
        interval [start, end), or ``None`` if it contains no samples."""
        timestamps, __ = self.trace.counter_samples(core, counter_id)
        lo = int(np.searchsorted(timestamps, start, side="left"))
        hi = int(np.searchsorted(timestamps, end, side="left"))
        if lo >= hi:
            return None
        return self.tree(core, counter_id).query(lo, hi)
