"""Event data model shared by the tracer and the analysis tool.

An Aftermath trace is a stream of records: worker state intervals,
discrete events, hardware counter samples, task execution intervals,
memory accesses, communication events, plus static descriptions (machine
topology, counter descriptions, memory region placement, task types).
This module defines the in-memory form of each record.  The binary
encoding lives in :mod:`repro.trace_format`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple


class WorkerState(enum.IntEnum):
    """The main activities a worker thread traverses (Section II-B.1)."""

    RUNNING = 0       # executing a task
    IDLE = 1          # out of work; engaging in work-stealing
    CREATE = 2        # creating tasks
    SYNC = 3          # waiting on a synchronization barrier
    BROADCAST = 4     # broadcasting data to other workers
    STEAL = 5         # actively transferring a stolen task


#: Display names used by legends, text views and DOT export.
STATE_NAMES = {
    WorkerState.RUNNING: "task execution",
    WorkerState.IDLE: "idle / work-stealing",
    WorkerState.CREATE: "task creation",
    WorkerState.SYNC: "synchronization",
    WorkerState.BROADCAST: "broadcast",
    WorkerState.STEAL: "steal",
}


class DiscreteEventKind(enum.IntEnum):
    """Point events overlaid on the timeline (Section II-A.1)."""

    TASK_CREATED = 0
    TASK_STOLEN = 1
    REGION_ALLOCATED = 2
    ANNOTATION = 3


@dataclass(frozen=True)
class StateInterval:
    """Worker ``core`` was in ``state`` during [start, end)."""

    core: int
    state: int
    start: int
    end: int

    @property
    def duration(self):
        """Cycles the worker spent in this state."""
        return self.end - self.start


@dataclass(frozen=True)
class TaskExecution:
    """One task instance executed on ``core`` during [start, end)."""

    task_id: int
    type_id: int
    core: int
    start: int
    end: int

    @property
    def duration(self):
        """Cycles between the task's start and end."""
        return self.end - self.start


@dataclass(frozen=True)
class CounterSample:
    """Sample of a monotone (or derived) per-core counter."""

    core: int
    counter_id: int
    timestamp: int
    value: float


@dataclass(frozen=True)
class CounterDescription:
    """Static description of a performance counter present in the trace."""

    counter_id: int
    name: str
    monotone: bool = True


@dataclass(frozen=True)
class DiscreteEvent:
    """A point event: task creation, steal, allocation, annotation."""

    core: int
    kind: int
    timestamp: int
    payload: int = 0          # task id, region id, ... depending on kind


@dataclass(frozen=True)
class CommEvent:
    """Communication between workers or nodes (e.g. a successful steal or
    a data transfer between dependent tasks)."""

    src_core: int
    dst_core: int
    timestamp: int
    size: int = 0
    task_id: int = -1


@dataclass(frozen=True)
class MemoryAccess:
    """A read or write performed by a task (addresses, not regions: the
    region and its NUMA placement are looked up at analysis time, which
    is the redundancy-avoidance scheme of Section VI-A)."""

    task_id: int
    core: int
    address: int
    size: int
    is_write: bool
    timestamp: int


@dataclass(frozen=True)
class RegionInfo:
    """Static NUMA placement of a memory region, stored once per region."""

    region_id: int
    address: int
    size: int
    page_nodes: Tuple[int, ...]
    name: str = ""

    @property
    def end(self):
        """First address past the region."""
        return self.address + self.size


@dataclass(frozen=True)
class TaskTypeInfo:
    """Static description of a work function."""

    type_id: int
    name: str
    address: int = 0
    source_file: str = ""
    source_line: int = 0


@dataclass(frozen=True)
class TopologyInfo:
    """Machine topology as recorded in the trace."""

    num_nodes: int
    cores_per_node: int
    name: str = "machine"

    @property
    def num_cores(self):
        """Total cores (nodes x cores per node)."""
        return self.num_nodes * self.cores_per_node

    def node_of_core(self, core):
        """NUMA node hosting one core."""
        return core // self.cores_per_node
