"""Aftermath core: the paper's contribution.

Trace model and indexes, filters, derived metrics, statistics, NUMA
locality analysis, task-graph reconstruction, correlation tools, symbol
tables and annotations.
"""

from .annotations import Annotation, AnnotationStore
from .columnar import ColumnarBuilder, ColumnarTrace, LaneStack, traces_equal
from .anomalies import (Anomaly, CounterCorrelation, correlate_counters,
                        detect_duration_outliers,
                        detect_frequency_throttling, detect_idle_phases,
                        detect_load_imbalance, detect_locality_anomalies,
                        detect_stragglers, scan)
from .derived import (AggregatedCounter, AverageTaskDuration,
                      BytesBetweenNodes, Derivative, DerivedMetric,
                      DerivedMetricMenu, DerivedSeries, Ratio,
                      WorkersInState)
from .correlation import (RegressionResult, counter_increase_per_task,
                          counter_rate_per_task, duration_vs_counter_rate,
                          export_task_table, linear_regression)
from .events import (CommEvent, CounterDescription, CounterSample,
                     DiscreteEvent, DiscreteEventKind, MemoryAccess,
                     RegionInfo, STATE_NAMES, StateInterval, TaskExecution,
                     TaskTypeInfo, TopologyInfo, WorkerState)
from .filters import (AllTasks, CoreFilter, DurationFilter, IntervalFilter,
                      NumaNodeFilter, PredicateFilter, TaskFilter,
                      TaskTypeFilter, filtered_tasks)
from .index import (counter_samples_in_interval, discrete_in_interval,
                    interval_slice, point_slice, states_in_interval,
                    tasks_in_interval)
from .interval_tree import CounterIndex, MinMaxTree, segment_minmax
from .pyramid import StateIndex, StateTiles, build_state_tiles
from .metrics import (aggregate_counter_series,
                      average_task_duration_series,
                      bytes_between_nodes_series, counter_derivative_series,
                      counter_ratio_series, discrete_derivative,
                      interval_edges, state_count_series,
                      task_duration_stats)
from .numa import (average_remote_fraction, task_node_bytes,
                   task_predominant_nodes, task_remote_fractions)
from .statistics import (IntervalReport, average_parallelism,
                         counter_histogram,
                         communication_matrix, interval_report,
                         interval_report_out_of_core,
                         locality_fraction, per_core_state_time,
                         state_time_summary,
                         state_time_summary_out_of_core, steal_matrix,
                         task_duration_histogram)
from .schedule_analysis import (CriticalPathReport, TypeProfileEntry,
                                critical_path_report, describe_profile,
                                scheduling_delays, task_type_profile)
from .selection import (DataEndpoint, TaskDetails, describe_selection,
                        state_at, task_at, task_details)
from .symbols import Symbol, SymbolTable, resolve_task, symbols_from_trace
from .taskgraph import (TaskGraph, export_dot, graph_from_program,
                        reconstruct_task_graph, to_networkx)
from .trace import RegionLookup, Trace, TraceBuilder, merge_counter_series

__all__ = [
    "Annotation", "AnnotationStore", "Anomaly", "CounterCorrelation",
    "correlate_counters", "detect_duration_outliers",
    "detect_frequency_throttling", "detect_idle_phases",
    "detect_load_imbalance", "detect_locality_anomalies",
    "detect_stragglers", "scan", "AggregatedCounter",
    "AverageTaskDuration", "BytesBetweenNodes", "Derivative",
    "DerivedMetric", "DerivedMetricMenu", "DerivedSeries", "Ratio",
    "WorkersInState", "DataEndpoint", "TaskDetails",
    "describe_selection", "state_at", "task_at", "task_details",
    "CriticalPathReport", "TypeProfileEntry", "critical_path_report",
    "describe_profile", "scheduling_delays", "task_type_profile",
    "RegressionResult",
    "counter_increase_per_task", "counter_rate_per_task",
    "duration_vs_counter_rate", "export_task_table", "linear_regression",
    "CommEvent", "CounterDescription", "CounterSample", "DiscreteEvent",
    "DiscreteEventKind", "MemoryAccess", "RegionInfo", "STATE_NAMES",
    "StateInterval", "TaskExecution", "TaskTypeInfo", "TopologyInfo",
    "WorkerState", "AllTasks", "CoreFilter", "DurationFilter",
    "IntervalFilter", "NumaNodeFilter", "PredicateFilter", "TaskFilter",
    "TaskTypeFilter", "filtered_tasks", "counter_samples_in_interval",
    "discrete_in_interval", "interval_slice", "point_slice",
    "states_in_interval", "tasks_in_interval", "CounterIndex",
    "MinMaxTree", "segment_minmax", "StateIndex", "StateTiles",
    "build_state_tiles", "aggregate_counter_series",
    "average_task_duration_series", "bytes_between_nodes_series",
    "counter_derivative_series", "counter_ratio_series",
    "discrete_derivative", "interval_edges", "state_count_series",
    "task_duration_stats", "average_remote_fraction", "task_node_bytes",
    "task_predominant_nodes", "task_remote_fractions", "IntervalReport",
    "average_parallelism", "communication_matrix", "interval_report",
    "interval_report_out_of_core", "locality_fraction",
    "per_core_state_time", "state_time_summary",
    "state_time_summary_out_of_core",
    "steal_matrix", "task_duration_histogram", "counter_histogram",
    "Symbol", "SymbolTable",
    "resolve_task", "symbols_from_trace", "TaskGraph", "export_dot",
    "graph_from_program", "reconstruct_task_graph", "to_networkx",
    "Trace", "TraceBuilder", "merge_counter_series",
    "ColumnarBuilder", "ColumnarTrace", "LaneStack", "traces_equal",
    "RegionLookup",
]
