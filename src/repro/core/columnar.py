"""Columnar event store: one structured array per core per record kind.

This is the literal data layout of Section VI-B-c — "one array per core
and per type of event, sorted by timestamp" — realized as numpy
structured arrays.  :class:`ColumnarTrace` holds, for every core, one
contiguous array per record kind (state intervals, task executions,
discrete events, communication events, memory accesses) plus one array
per ``(core, counter)`` pair for counter samples.  Every lane is sorted
by timestamp, so interval queries are two binary searches away and all
statistics run as vectorized array passes.

The store is convertible both ways from the object model:

* :meth:`Trace.to_columnar` / :meth:`ColumnarTrace.from_trace` — wrap
  an existing :class:`~repro.core.trace.Trace`;
* :meth:`ColumnarTrace.to_objects` — rebuild the :class:`Trace`;
* :class:`ColumnarBuilder` — fill the arrays directly while reading a
  trace file (``read_trace(path, columnar=True)``), never
  materializing per-event objects;
* :func:`traces_equal` — order-insensitive equality between any two
  stores, the oracle of the round-trip property tests.

Compatibility: :class:`ColumnarTrace` exposes the same duck-typed
surface the analysis layer uses on :class:`Trace` (``.states.columns``,
``core_column``, ``.comm``, ``.accesses``, ``.counter_series``,
``nodes_of_addresses``, the dataclass iterators), so every entry point
in :mod:`repro.core.statistics`, :mod:`repro.core.metrics`,
:mod:`repro.core.filters`, :mod:`repro.core.index` and
:mod:`repro.render.timeline` accepts either store unchanged — the
parity tests in ``tests/test_columnar_parity.py`` pin that down.
"""

from __future__ import annotations

import numpy as np

from .index import interval_slice, point_slice
from .trace import EventViewMixin, RegionLookup, Trace, TraceBuilder

#: One record per worker-state interval of one core.
STATE_DTYPE = np.dtype([("state", np.int64), ("start", np.int64),
                        ("end", np.int64)])
#: One record per task execution of one core.
TASK_DTYPE = np.dtype([("task_id", np.int64), ("type_id", np.int64),
                       ("start", np.int64), ("end", np.int64)])
#: One record per discrete (point) event of one core.
DISCRETE_DTYPE = np.dtype([("kind", np.int64), ("timestamp", np.int64),
                           ("payload", np.int64)])
#: One record per communication event originating at one core.
COMM_DTYPE = np.dtype([("dst_core", np.int64), ("timestamp", np.int64),
                       ("size", np.int64), ("task_id", np.int64)])
#: One record per memory access performed on one core.
ACCESS_DTYPE = np.dtype([("task_id", np.int64), ("address", np.int64),
                         ("size", np.int64), ("is_write", np.int64),
                         ("timestamp", np.int64)])
#: One record per sample of one counter on one core.
COUNTER_DTYPE = np.dtype([("timestamp", np.int64),
                          ("value", np.float64)])


class LaneStack:
    """One sorted structured array per core for one record kind.

    ``lane(core)`` is the per-core array itself (zero-copy field
    access); ``columns`` / ``core_column`` / ``core_slice`` present the
    same view :class:`~repro.core.trace.PerCoreEvents` offers, so the
    vectorized analyses run on either store.  The synthesized
    ``core_name`` column (the lane index) exists only in these views —
    the lanes themselves never store it.
    """

    def __init__(self, lanes, column_order, core_name="core"):
        self.lanes = list(lanes)
        self.column_order = tuple(column_order)
        self.core_name = core_name
        lengths = np.asarray([len(lane) for lane in self.lanes],
                             dtype=np.int64)
        self.offsets = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(lengths)))
        self._columns = None

    def __len__(self):
        return int(self.offsets[-1])

    def lane(self, core):
        """The structured event array of one core."""
        return self.lanes[core]

    def core_slice(self, core):
        """Concatenated-column slice covering one core's events."""
        return slice(int(self.offsets[core]), int(self.offsets[core + 1]))

    def core_column(self, core, name):
        """One column of one core's lane (``core_name`` synthesized)."""
        if name == self.core_name:
            return np.full(len(self.lanes[core]), core, dtype=np.int64)
        return self.lanes[core][name]

    @property
    def columns(self):
        """Concatenated (core-major, per-core sorted) column dict —
        exactly the layout :class:`Trace` keeps.  Built lazily."""
        if self._columns is None:
            lengths = [len(lane) for lane in self.lanes]
            columns = {}
            for name in self.column_order:
                if name == self.core_name:
                    columns[name] = np.repeat(
                        np.arange(len(self.lanes), dtype=np.int64),
                        lengths)
                elif self.lanes:
                    columns[name] = np.concatenate(
                        [np.ascontiguousarray(lane[name])
                         for lane in self.lanes])
                else:
                    columns[name] = np.empty(0, dtype=np.int64)
            self._columns = columns
        return self._columns


def _lane_from_columns(columns, selection, dtype):
    """A structured array from a slice/index of parallel columns."""
    reference = columns[dtype.names[0]][selection]
    lane = np.empty(len(reference), dtype=dtype)
    lane[dtype.names[0]] = reference
    for name in dtype.names[1:]:
        lane[name] = columns[name][selection]
    return lane


def _split_by_core(columns, core_key, sort_key, num_cores, dtype):
    """Per-core sorted lanes from flat columns (stable in ties)."""
    order = np.lexsort((columns[sort_key], columns[core_key]))
    ordered = {name: values[order] for name, values in columns.items()}
    offsets = np.searchsorted(ordered[core_key],
                              np.arange(num_cores + 1))
    return [_lane_from_columns(
                ordered, slice(int(offsets[core]), int(offsets[core + 1])),
                dtype)
            for core in range(num_cores)]


class ColumnarTrace(EventViewMixin):
    """An immutable trace stored as per-core sorted structured arrays.

    The object-model views (dataclass iterators, ``task_by_id``,
    region lookups, ``counter_samples``) come from the shared
    :class:`~repro.core.trace.EventViewMixin`."""

    def __init__(self, topology, states, tasks, discrete, comm, accesses,
                 counter_lanes, counter_descriptions, task_types, regions,
                 time_bounds=None, pyramids=None):
        self.topology = topology
        # Persisted render pyramids of a memory-mapped open (see
        # repro.trace_format.cache.MappedPyramids); in-memory stores
        # build the equivalent structures lazily instead.  Windowed
        # sub-traces never inherit them: their lanes are slices the
        # persisted levels do not describe.
        self.pyramids = pyramids
        self.states = LaneStack(states, ("core", "state", "start", "end"))
        self.tasks = LaneStack(tasks, ("task_id", "type_id", "core",
                                       "start", "end"))
        self.discrete = LaneStack(discrete, ("core", "kind", "timestamp",
                                             "payload"))
        self.comm_lanes = LaneStack(comm, ("src_core", "dst_core",
                                           "timestamp", "size", "task_id"),
                                    core_name="src_core")
        self.access_lanes = LaneStack(accesses, ("task_id", "core",
                                                 "address", "size",
                                                 "is_write", "timestamp"))
        self.counter_lanes = dict(counter_lanes)
        self.counter_descriptions = list(counter_descriptions)
        self.task_types = list(task_types)
        self._region_lookup = RegionLookup(regions)
        self.regions = self._region_lookup.regions
        self._comm = None
        self._accesses = None
        self._counter_series = None
        # ``time_bounds`` lets a memory-mapped open skip the bounds
        # scan (which would fault in every page of the interval lanes);
        # the cache header stores the bounds instead.
        if time_bounds is None:
            self.begin, self.end = self._time_bounds()
        else:
            self.begin, self.end = int(time_bounds[0]), int(time_bounds[1])

    # -- global properties --------------------------------------------
    @property
    def num_cores(self):
        """Total cores of the traced machine."""
        return self.topology.num_cores

    @property
    def duration(self):
        """Cycles between the first and last event."""
        return self.end - self.begin

    def _time_bounds(self):
        begin, end = [], []
        for stack in (self.states, self.tasks):
            for lane in stack.lanes:
                if len(lane):
                    begin.append(int(lane["start"][0]))
                    end.append(int(lane["end"].max()))
        for lane in self.counter_lanes.values():
            if len(lane):
                begin.append(int(lane["timestamp"][0]))
                end.append(int(lane["timestamp"][-1]))
        if not begin:
            return 0, 0
        return min(begin), max(end)

    # -- Trace-compatible global views --------------------------------
    @property
    def comm(self):
        """Communication events as one global, time-sorted column dict
        (the layout of :attr:`Trace.comm`)."""
        if self._comm is None:
            columns = self.comm_lanes.columns
            order = np.argsort(columns["timestamp"], kind="stable")
            self._comm = {name: columns[name][order]
                          for name in self.comm_lanes.column_order}
        return self._comm

    @property
    def accesses(self):
        """Memory accesses as one task-sorted column dict (the layout
        of :attr:`Trace.accesses`)."""
        if self._accesses is None:
            columns = self.access_lanes.columns
            order = np.argsort(columns["task_id"], kind="stable")
            self._accesses = {name: columns[name][order]
                              for name in self.access_lanes.column_order}
        return self._accesses

    # -- counters -------------------------------------------------------
    @property
    def counter_series(self):
        """``(core, counter_id) -> (timestamps, values)`` views."""
        if self._counter_series is None:
            self._counter_series = {
                key: (lane["timestamp"], lane["value"])
                for key, lane in self.counter_lanes.items()}
        return self._counter_series

    def counter_lane(self, core, counter_id):
        """The structured sample array of one counter on one core."""
        empty = np.empty(0, dtype=COUNTER_DTYPE)
        return self.counter_lanes.get((core, counter_id), empty)

    def counter_samples(self, core, counter_id):
        """(timestamps, values) arrays for one counter on one core.

        Served straight from the lane dict: the first frame after a
        mapped reopen must not pay for cutting field views of every
        counter lane (the ``counter_series`` property) to read one.
        """
        lane = self.counter_lanes.get((core, counter_id))
        if lane is None:
            return (np.empty(0, dtype=np.int64),
                    np.empty(0, dtype=np.float64))
        return lane["timestamp"], lane["value"]

    # -- zero-copy window slicing -------------------------------------
    def slice_time_window(self, start, end):
        """The sub-trace overlapping ``[start, end)`` as lane *views*.

        Every lane is per-core sorted, so the events of the window are
        one binary-searched slice per lane (Section VI-B-c): interval
        kinds (states, tasks) keep every record overlapping the window,
        point kinds keep timestamps in ``[start, end)`` — the exact
        filtering semantics of
        :func:`repro.trace_format.streaming.split_time_window`.  No
        event data is copied; on a memory-mapped store only the pages
        the returned slices touch are ever read, which is what makes
        windowed queries on a cached million-event trace O(window).
        """
        def interval_lanes(stack):
            lanes = []
            for lane in stack.lanes:
                selection = interval_slice(lane["start"], lane["end"],
                                           start, end)
                lanes.append(lane[selection])
            return lanes

        def point_lanes(stack):
            return [lane[point_slice(lane["timestamp"], start, end)]
                    for lane in stack.lanes]

        counter_lanes = {
            key: lane[point_slice(lane["timestamp"], start, end)]
            for key, lane in self.counter_lanes.items()}
        return ColumnarTrace(
            topology=self.topology,
            states=interval_lanes(self.states),
            tasks=interval_lanes(self.tasks),
            discrete=point_lanes(self.discrete),
            comm=point_lanes(self.comm_lanes),
            accesses=point_lanes(self.access_lanes),
            counter_lanes=counter_lanes,
            counter_descriptions=self.counter_descriptions,
            task_types=self.task_types,
            regions=self.regions)

    def __repr__(self):
        return ("ColumnarTrace(cores={}, states={}, tasks={}, "
                "accesses={}, counters={})".format(
                    self.num_cores, len(self.states), len(self.tasks),
                    len(self.access_lanes),
                    len(self.counter_descriptions)))

    # -- conversions ------------------------------------------------------
    @classmethod
    def from_trace(cls, trace):
        """Re-layout a :class:`Trace` into per-core structured arrays."""
        num_cores = trace.num_cores
        states = [_lane_from_columns(trace.states.columns,
                                     trace.states.core_slice(core),
                                     STATE_DTYPE)
                  for core in range(num_cores)]
        tasks = [_lane_from_columns(trace.tasks.columns,
                                    trace.tasks.core_slice(core),
                                    TASK_DTYPE)
                 for core in range(num_cores)]
        discrete = [_lane_from_columns(trace.discrete.columns,
                                       trace.discrete.core_slice(core),
                                       DISCRETE_DTYPE)
                    for core in range(num_cores)]
        comm = _split_by_core(trace.comm, "src_core", "timestamp",
                              num_cores, COMM_DTYPE)
        accesses = _split_by_core(trace.accesses, "core", "timestamp",
                                  num_cores, ACCESS_DTYPE)
        counter_lanes = {}
        for key, (timestamps, values) in trace.counter_series.items():
            lane = np.empty(len(timestamps), dtype=COUNTER_DTYPE)
            lane["timestamp"] = timestamps
            lane["value"] = values
            counter_lanes[key] = lane
        return cls(topology=trace.topology, states=states, tasks=tasks,
                   discrete=discrete, comm=comm, accesses=accesses,
                   counter_lanes=counter_lanes,
                   counter_descriptions=trace.counter_descriptions,
                   task_types=trace.task_types, regions=trace.regions)

    def to_objects(self):
        """Rebuild the object-model :class:`Trace` (lossless)."""
        counter_series = {key: (lane["timestamp"].copy(),
                                lane["value"].copy())
                          for key, lane in self.counter_lanes.items()}
        return Trace(topology=self.topology,
                     states=dict(self.states.columns),
                     tasks=dict(self.tasks.columns),
                     discrete=dict(self.discrete.columns),
                     comm=dict(self.comm),
                     accesses=dict(self.accesses),
                     counter_series=counter_series,
                     counter_descriptions=list(self.counter_descriptions),
                     task_types=list(self.task_types),
                     regions=list(self.regions))


class ColumnarBuilder(TraceBuilder):
    """Append-only accumulator that assembles a :class:`ColumnarTrace`.

    Inherits every record method from
    :class:`~repro.core.trace.TraceBuilder` — the two builders cannot
    drift apart — with one difference: the topology may arrive at any
    time before :meth:`build` (trace files allow static records
    anywhere), via the constructor or :meth:`set_topology`.
    """

    def __init__(self, topology=None):
        super().__init__(topology)

    def set_topology(self, topology):
        """Install the topology (any time before :meth:`build`)."""
        self.topology = topology

    def build(self):
        """Assemble the per-core sorted lanes into a :class:`ColumnarTrace`."""
        if self.topology is None:
            raise ValueError("cannot build a trace without a topology")
        num_cores = self.topology.num_cores
        counter_lanes = {}
        for key, times in self._counter_times.items():
            timestamps = np.asarray(times, dtype=np.int64)
            values = np.asarray(self._counter_values[key],
                                dtype=np.float64)
            order = np.argsort(timestamps, kind="stable")
            lane = np.empty(len(timestamps), dtype=COUNTER_DTYPE)
            lane["timestamp"] = timestamps[order]
            lane["value"] = values[order]
            counter_lanes[key] = lane
        return ColumnarTrace(
            topology=self.topology,
            states=_split_by_core(self._states.to_numpy(), "core",
                                  "start", num_cores, STATE_DTYPE),
            tasks=_split_by_core(self._tasks.to_numpy(), "core", "start",
                                 num_cores, TASK_DTYPE),
            discrete=_split_by_core(self._discrete.to_numpy(), "core",
                                    "timestamp", num_cores,
                                    DISCRETE_DTYPE),
            comm=_split_by_core(self._comm.to_numpy(), "src_core",
                                "timestamp", num_cores, COMM_DTYPE),
            accesses=_split_by_core(self._accesses.to_numpy(), "core",
                                    "timestamp", num_cores, ACCESS_DTYPE),
            counter_lanes=counter_lanes,
            counter_descriptions=list(self.counter_descriptions),
            task_types=list(self.task_types),
            regions=list(self.regions))


def _canonical_columns(columns):
    """Columns reordered into a canonical total order (name-sorted
    lexsort), so equality ignores permitted tie reorderings."""
    names = sorted(columns)
    if not names or len(columns[names[0]]) == 0:
        return {name: columns[name] for name in names}
    order = np.lexsort(tuple(columns[name] for name in names))
    return {name: columns[name][order] for name in names}


def _columns_equal(left, right):
    if sorted(left) != sorted(right):
        return False
    left = _canonical_columns(left)
    right = _canonical_columns(right)
    return all(np.array_equal(left[name], right[name]) for name in left)


def traces_equal(left, right):
    """Whether two trace stores hold exactly the same records.

    Accepts any mix of :class:`Trace` and :class:`ColumnarTrace`.
    Event comparison is order-insensitive within the orderings both
    stores are free to choose (ties in the per-core / per-key sorts);
    values must match exactly, including counter-sample floats.
    """
    if left.topology != right.topology:
        return False
    if (list(left.counter_descriptions) != list(right.counter_descriptions)
            or list(left.task_types) != list(right.task_types)
            or list(left.regions) != list(right.regions)):
        return False
    for kind in ("states", "tasks", "discrete"):
        if not _columns_equal(getattr(left, kind).columns,
                              getattr(right, kind).columns):
            return False
    if not _columns_equal(left.comm, right.comm):
        return False
    if not _columns_equal(left.accesses, right.accesses):
        return False
    if set(left.counter_series) != set(right.counter_series):
        return False
    for key, (timestamps, values) in left.counter_series.items():
        other_times, other_values = right.counter_series[key]
        if not _columns_equal({"t": timestamps, "v": values},
                              {"t": other_times, "v": other_values}):
            return False
    return True
