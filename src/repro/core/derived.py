"""Configurable derived-metric generators (Section II-A.5, Fig. 1 box 5).

Aftermath's GUI has "a menu for customizing generators of metrics
derived from high-level events or metrics that combine existing
statistical counters (e.g., average task duration, number of bytes
exchanged between specific NUMA nodes, ratio of hardware counters,
etc.), overlaid on the timeline".

This module provides that generator layer: small declarative *spec*
objects that are composed, materialized against a trace into a
:class:`DerivedSeries`, and rendered like any counter.  Specs are
plain data, so a saved analysis configuration is just a list of specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from . import metrics
from .events import WorkerState


@dataclass(frozen=True, eq=False)
class DerivedSeries:
    """A materialized derived metric: one value per interval.

    ``edges`` and ``values`` are stored as float64 numpy arrays (any
    sequence passed to the constructor is normalized), so a series
    flows from the metrics kernels to the overlay renderer without the
    per-element tuple boxing the old representation paid on every
    ``materialize``/render round trip."""

    name: str
    edges: np.ndarray
    values: np.ndarray

    def __post_init__(self):
        object.__setattr__(self, "edges",
                           np.asarray(self.edges, dtype=np.float64))
        object.__setattr__(self, "values",
                           np.asarray(self.values, dtype=np.float64))

    def as_arrays(self):
        """``(edges, values)`` as the underlying numpy arrays."""
        return self.edges, self.values

    def sample_points(self):
        """(timestamps, values) at interval midpoints — the form the
        counter overlay renderer consumes."""
        midpoints = (self.edges[:-1] + self.edges[1:]) / 2.0
        return midpoints.astype(np.int64), self.values


class DerivedMetric:
    """Base class: ``materialize(trace)`` produces a series."""

    name = "derived"

    def materialize(self, trace, num_intervals=200, start=None,
                    end=None):
        """Evaluate the spec against a trace into a :class:`DerivedSeries`."""
        raise NotImplementedError

    def __truediv__(self, other):
        return Ratio(self, other)

    def derivative(self):
        """Spec for the discrete derivative of this metric."""
        return Derivative(self)


@dataclass(frozen=True)
class WorkersInState(DerivedMetric):
    """Number of workers simultaneously in a state (Fig. 3)."""

    state: int = int(WorkerState.IDLE)
    cores: Optional[Tuple[int, ...]] = None

    @property
    def name(self):
        """``workers_in_<STATE>`` (menu and legend label)."""
        return "workers_in_{}".format(WorkerState(self.state).name)

    def materialize(self, trace, num_intervals=200, start=None,
                    end=None):
        """Count workers in the state per interval (Fig. 3 series)."""
        edges, counts = metrics.state_count_series(
            trace, self.state, num_intervals, cores=self.cores,
            start=start, end=end)
        return DerivedSeries(self.name, edges, counts)


@dataclass(frozen=True)
class AverageTaskDuration(DerivedMetric):
    """Average duration of executing tasks per interval (Fig. 8)."""

    name: str = "average_task_duration"

    def materialize(self, trace, num_intervals=200, start=None,
                    end=None):
        """Average executing-task duration per interval (Fig. 8)."""
        edges, averages = metrics.average_task_duration_series(
            trace, num_intervals, start=start, end=end)
        return DerivedSeries(self.name, edges, averages)


@dataclass(frozen=True)
class AggregatedCounter(DerivedMetric):
    """Per-worker counter summed into a global series (Section III-B)."""

    counter: str = "cache_misses"
    cores: Optional[Tuple[int, ...]] = None

    @property
    def name(self):
        """``aggregate_<counter>`` (menu and legend label)."""
        return "aggregate_{}".format(self.counter)

    def materialize(self, trace, num_intervals=200, start=None,
                    end=None):
        """Sum the counter across workers into per-interval means."""
        edges, totals = metrics.aggregate_counter_series(
            trace, self.counter, num_intervals, cores=self.cores,
            start=start, end=end)
        # Totals are sampled at edges; fold to per-interval means.
        values = (np.asarray(totals[:-1]) + np.asarray(totals[1:])) / 2.0
        return DerivedSeries(self.name, edges, values)


@dataclass(frozen=True)
class BytesBetweenNodes(DerivedMetric):
    """Bytes flowing from one NUMA node to tasks on another."""

    src_node: int = 0
    dst_node: int = 0

    @property
    def name(self):
        """``bytes_<src>_to_<dst>`` (menu and legend label)."""
        return "bytes_{}_to_{}".format(self.src_node, self.dst_node)

    def materialize(self, trace, num_intervals=200, start=None,
                    end=None):
        """Bytes moved between the two NUMA nodes per interval."""
        edges, totals = metrics.bytes_between_nodes_series(
            trace, self.src_node, self.dst_node, num_intervals,
            start=start, end=end)
        return DerivedSeries(self.name, edges, totals)


@dataclass(frozen=True)
class Derivative(DerivedMetric):
    """Difference quotient of another derived metric (Fig. 10/18)."""

    inner: DerivedMetric = field(default_factory=AverageTaskDuration)

    @property
    def name(self):
        """``d(<inner>)`` (menu and legend label)."""
        return "d({})".format(self.inner.name)

    def materialize(self, trace, num_intervals=200, start=None,
                    end=None):
        """Discrete derivative of the inner metric's series (Fig. 10)."""
        series = self.inner.materialize(trace, num_intervals, start, end)
        edges, values = series.as_arrays()
        # Treat the per-interval values as samples at midpoints.
        midpoints = (edges[:-1] + edges[1:]) / 2.0
        rates = metrics.discrete_derivative(midpoints, values)
        return DerivedSeries(self.name, midpoints, rates)


@dataclass(frozen=True)
class Ratio(DerivedMetric):
    """Pointwise ratio of two derived metrics (e.g. misses/cycle)."""

    numerator: DerivedMetric = field(default_factory=AverageTaskDuration)
    denominator: DerivedMetric = field(
        default_factory=AverageTaskDuration)

    @property
    def name(self):
        """``<numerator>_per_<denominator>`` (menu and legend label)."""
        return "{} / {}".format(self.numerator.name,
                                self.denominator.name)

    def materialize(self, trace, num_intervals=200, start=None,
                    end=None):
        """Pointwise ratio of the two metrics' series (0 where undefined)."""
        top = self.numerator.materialize(trace, num_intervals, start,
                                         end)
        bottom = self.denominator.materialize(trace, num_intervals,
                                              start, end)
        __, top_values = top.as_arrays()
        __, bottom_values = bottom.as_arrays()
        count = min(len(top_values), len(bottom_values))
        values = np.divide(top_values[:count], bottom_values[:count],
                           out=np.zeros(count),
                           where=bottom_values[:count] != 0)
        return DerivedSeries(self.name, top.edges[:count + 1],
                             values)


class DerivedMetricMenu:
    """The configured set of generators, as in Fig. 1's box 5.

    Generators are registered under a display name and materialized
    together; the menu itself serializes to/from a plain dict so an
    analysis configuration can be stored alongside annotations.
    """

    def __init__(self):
        self._generators: Dict[str, DerivedMetric] = {}

    def add(self, metric, name=None):
        """Register a spec under its (unique) name."""
        self._generators[name or metric.name] = metric
        return self

    def remove(self, name):
        """Drop a spec by name."""
        del self._generators[name]

    def names(self):
        """Registered spec names, sorted alphabetically."""
        return sorted(self._generators)

    def __len__(self):
        return len(self._generators)

    def materialize_all(self, trace, num_intervals=200):
        """Materialize every registered spec against one trace."""
        return {name: generator.materialize(trace, num_intervals)
                for name, generator in self._generators.items()}

    # -- persistence --------------------------------------------------
    def to_config(self):
        """JSON-pure menu configuration (session persistence)."""
        return {name: _spec_to_dict(generator)
                for name, generator in self._generators.items()}

    @classmethod
    def from_config(cls, config):
        """Rebuild a menu from its :meth:`to_config` payload."""
        menu = cls()
        for name, spec in config.items():
            menu.add(_spec_from_dict(spec), name=name)
        return menu


_SPEC_KINDS = {
    "workers_in_state": WorkersInState,
    "average_task_duration": AverageTaskDuration,
    "aggregated_counter": AggregatedCounter,
    "bytes_between_nodes": BytesBetweenNodes,
    "derivative": Derivative,
    "ratio": Ratio,
}


def _spec_to_dict(metric):
    if isinstance(metric, WorkersInState):
        return {"kind": "workers_in_state", "state": int(metric.state),
                "cores": list(metric.cores) if metric.cores else None}
    if isinstance(metric, AverageTaskDuration):
        return {"kind": "average_task_duration"}
    if isinstance(metric, AggregatedCounter):
        return {"kind": "aggregated_counter", "counter": metric.counter,
                "cores": list(metric.cores) if metric.cores else None}
    if isinstance(metric, BytesBetweenNodes):
        return {"kind": "bytes_between_nodes", "src": metric.src_node,
                "dst": metric.dst_node}
    if isinstance(metric, Derivative):
        return {"kind": "derivative", "inner": _spec_to_dict(metric.inner)}
    if isinstance(metric, Ratio):
        return {"kind": "ratio",
                "numerator": _spec_to_dict(metric.numerator),
                "denominator": _spec_to_dict(metric.denominator)}
    raise TypeError("unknown derived metric {!r}".format(metric))


def _spec_from_dict(spec):
    kind = spec["kind"]
    if kind == "workers_in_state":
        cores = spec.get("cores")
        return WorkersInState(state=spec["state"],
                              cores=tuple(cores) if cores else None)
    if kind == "average_task_duration":
        return AverageTaskDuration()
    if kind == "aggregated_counter":
        cores = spec.get("cores")
        return AggregatedCounter(counter=spec["counter"],
                                 cores=tuple(cores) if cores else None)
    if kind == "bytes_between_nodes":
        return BytesBetweenNodes(src_node=spec["src"],
                                 dst_node=spec["dst"])
    if kind == "derivative":
        return Derivative(inner=_spec_from_dict(spec["inner"]))
    if kind == "ratio":
        return Ratio(numerator=_spec_from_dict(spec["numerator"]),
                     denominator=_spec_from_dict(spec["denominator"]))
    raise ValueError("unknown derived metric kind {!r}".format(kind))
