"""Statistical views (Section II-A.2).

Aggregate quantitative information for a user-selected interval of the
timeline: the task-duration histogram (Fig. 16), the average
parallelism, per-state time breakdowns and the NUMA communication
incidence matrix (Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .events import WorkerState
from .filters import IntervalFilter, filtered_tasks


def task_duration_histogram(trace, bins=20, task_filter=None, start=None,
                            end=None, value_range=None):
    """Distribution of task durations as fractions of tasks (Fig. 16).

    Returns ``(edges, fractions)``; fractions sum to 1 when any task
    matches.  ``value_range`` optionally pins the histogram range.
    """
    if start is not None or end is not None:
        interval = IntervalFilter(trace.begin if start is None else start,
                                  trace.end if end is None else end)
        task_filter = interval if task_filter is None \
            else task_filter & interval
    columns = filtered_tasks(trace, task_filter)
    durations = (columns["end"] - columns["start"]).astype(np.float64)
    counts, edges = np.histogram(durations, bins=bins, range=value_range)
    total = counts.sum()
    fractions = counts / total if total else counts.astype(np.float64)
    return edges, fractions


def counter_histogram(trace, counter, bins=20, task_filter=None,
                      value_range=None):
    """Distribution of a counter's per-task increase.

    The built-in histogram path of Section IV ("by letting Aftermath
    attribute counter data to tasks ... it is possible to analyze cache
    locality quantitatively in built-in histograms").  Returns
    ``(edges, fractions)``.
    """
    from .correlation import counter_increase_per_task

    __, increases = counter_increase_per_task(trace, counter,
                                              task_filter)
    counts, edges = np.histogram(increases, bins=bins, range=value_range)
    total = counts.sum()
    fractions = counts / total if total else counts.astype(np.float64)
    return edges, fractions


def average_parallelism(trace, start=None, end=None):
    """Average number of simultaneously running tasks in an interval —
    the "text field indicating the average parallelism" of Fig. 1."""
    start = trace.begin if start is None else start
    end = trace.end if end is None else end
    if end <= start:
        return 0.0
    columns = trace.tasks.columns
    clipped = (np.minimum(columns["end"], end)
               - np.maximum(columns["start"], start))
    busy = clipped[clipped > 0].sum()
    return float(busy) / float(end - start)


def state_time_summary(trace, start=None, end=None):
    """Total cycles spent per worker state within an interval."""
    start = trace.begin if start is None else start
    end = trace.end if end is None else end
    totals: Dict[int, int] = {}
    columns = trace.states.columns
    clipped = (np.minimum(columns["end"], end)
               - np.maximum(columns["start"], start))
    keep = clipped > 0
    states = columns["state"][keep]
    overlap = clipped[keep]
    for state in np.unique(states):
        totals[int(state)] = int(overlap[states == state].sum())
    return totals


def per_core_state_time(trace, state, start=None, end=None):
    """Cycles each core spent in ``state`` within an interval."""
    start = trace.begin if start is None else start
    end = trace.end if end is None else end
    result = np.zeros(trace.num_cores, dtype=np.int64)
    columns = trace.states.columns
    keep = columns["state"] == int(state)
    clipped = (np.minimum(columns["end"][keep], end)
               - np.maximum(columns["start"][keep], start))
    cores = columns["core"][keep]
    positive = clipped > 0
    np.add.at(result, cores[positive], clipped[positive])
    return result


def communication_matrix(trace, start=None, end=None, normalize=True,
                         kind="any"):
    """NUMA communication incidence matrix (Fig. 15).

    Entry ``[src, dst]`` is the number of bytes located on NUMA node
    ``src`` accessed by tasks executing on node ``dst`` — derived from
    the trace's memory accesses and the per-region placement table, the
    paper's fine-grained analysis of memory transfers between dependent
    tasks.  ``kind`` restricts to ``"read"``, ``"write"`` or ``"any"``
    accesses.  With ``normalize=True`` entries are fractions of the
    total traffic.
    """
    nodes = trace.topology.num_nodes
    matrix = np.zeros((nodes, nodes), dtype=np.float64)
    accesses = trace.accesses
    keep = np.ones(len(accesses["task_id"]), dtype=bool)
    if kind == "read":
        keep &= accesses["is_write"] == 0
    elif kind == "write":
        keep &= accesses["is_write"] == 1
    if start is not None:
        keep &= accesses["timestamp"] >= start
    if end is not None:
        keep &= accesses["timestamp"] < end
    src = trace.nodes_of_addresses(accesses["address"][keep])
    dst = accesses["core"][keep] // trace.topology.cores_per_node
    sizes = accesses["size"][keep].astype(np.float64)
    valid = src >= 0
    np.add.at(matrix, (src[valid], dst[valid]), sizes[valid])
    if normalize and matrix.sum() > 0:
        matrix /= matrix.sum()
    return matrix


def locality_fraction(trace, start=None, end=None):
    """Fraction of accessed bytes served from the local NUMA node —
    the single number summarizing Fig. 15's diagonal."""
    matrix = communication_matrix(trace, start=start, end=end,
                                  normalize=False)
    total = matrix.sum()
    if total == 0:
        return 1.0
    return float(np.trace(matrix)) / float(total)


def steal_matrix(trace, start=None, end=None):
    """Core-to-core successful steal counts from communication events."""
    cores = trace.num_cores
    matrix = np.zeros((cores, cores), dtype=np.int64)
    comm = trace.comm
    keep = np.ones(len(comm["timestamp"]), dtype=bool)
    if start is not None:
        keep &= comm["timestamp"] >= start
    if end is not None:
        keep &= comm["timestamp"] < end
    np.add.at(matrix, (comm["src_core"][keep], comm["dst_core"][keep]), 1)
    return matrix


@dataclass
class IntervalReport:
    """The textual summary panel for a selected interval (Fig. 1, box 3)."""

    start: int
    end: int
    tasks: int
    average_parallelism: float
    state_cycles: Dict[int, int]
    locality: float

    def describe(self):
        """The multi-line text panel (tasks, parallelism, states)."""
        lines = ["interval [{} .. {})".format(self.start, self.end),
                 "tasks executing: {}".format(self.tasks),
                 "average parallelism: {:.2f}".format(
                     self.average_parallelism),
                 "local-access fraction: {:.1%}".format(self.locality)]
        total = sum(self.state_cycles.values())
        for state, cycles in sorted(self.state_cycles.items()):
            share = cycles / total if total else 0.0
            lines.append("  state {}: {:.1%}".format(
                WorkerState(state).name, share))
        return "\n".join(lines)


def interval_report(trace, start=None, end=None):
    """Assemble the per-interval statistics panel."""
    start = trace.begin if start is None else start
    end = trace.end if end is None else end
    interval = IntervalFilter(start, end)
    return IntervalReport(
        start=start, end=end,
        tasks=int(interval.mask(trace).sum()),
        average_parallelism=average_parallelism(trace, start, end),
        state_cycles=state_time_summary(trace, start, end),
        locality=locality_fraction(trace, start, end))


# --- out-of-core entry points -----------------------------------------------
#
# The same statistical views, computed from a trace *file* instead of a
# loaded Trace, in bounded memory.  Imports are deferred because
# repro.analysis builds on repro.trace_format, which builds on this
# package.


def state_time_summary_out_of_core(path, workers=None, columnar=False):
    """Whole-trace per-state cycle totals from a trace file.

    The out-of-core counterpart of :func:`state_time_summary`: the file
    is never loaded into memory — with a chunk index present the pass
    is sharded over ``workers`` processes, otherwise it streams
    serially.  ``columnar=True`` folds records through the vectorized
    batch accumulators.  Returns the same ``{state: cycles}`` mapping a
    full-file :func:`state_time_summary` would produce.
    """
    from ..analysis.parallel import parallel_streaming_statistics
    return dict(parallel_streaming_statistics(
        path, workers=workers, columnar=columnar).state_cycles)


def interval_report_out_of_core(path, start=None, end=None,
                                columnar=False):
    """Per-interval statistics panel computed from a trace file.

    Extracts just the ``[start, end)`` window of the file (seeking via
    the chunk index when present, streaming otherwise) and assembles
    the normal :class:`IntervalReport` from the small in-memory window.
    Omitted bounds are filled from a constant-memory statistics pass.
    ``columnar=True`` assembles the window as a
    :class:`~repro.core.columnar.ColumnarTrace` — every statistic here
    accepts either store, so the report is identical.
    """
    from ..trace_format.streaming import (split_time_window,
                                          streaming_statistics)
    if start is None or end is None:
        bounds = streaming_statistics(path)
        start = bounds.begin if start is None else start
        end = bounds.end if end is None else end
    window = split_time_window(path, start, end, columnar=columnar)
    return interval_report(window, start, end)
