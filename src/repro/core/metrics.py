"""Derived metrics (Section II-A.5).

Aftermath lets the user configure generators for metrics derived from
high-level events or combining existing counters, overlaid on the
timeline.  This module implements the derived counters the paper uses:

* the number of workers simultaneously in a given state (Fig. 3) —
  computed exactly as described in Section III-A: the execution is
  divided into a user-defined number of intervals; per interval and
  worker the time spent in the state is summed over workers and divided
  by the interval duration;
* the average task duration per interval (Fig. 8);
* per-worker-to-global aggregation of counters and the discrete
  derivative (difference quotient) used for the getrusage statistics
  (Fig. 10) and the branch-misprediction rate (Fig. 18);
* ratios of counters and bytes exchanged between NUMA node pairs.

All series are returned as ``(edges, values)`` where ``edges`` has one
more element than ``values`` (``values[i]`` covers
``[edges[i], edges[i+1])``).
"""

from __future__ import annotations

import numpy as np

from .filters import filtered_tasks


def interval_edges(trace, num_intervals, start=None, end=None):
    """Bin edges dividing (a part of) the execution into equal intervals."""
    if num_intervals < 1:
        raise ValueError("need at least one interval")
    start = trace.begin if start is None else start
    end = trace.end if end is None else end
    if end <= start:
        raise ValueError("empty time range")
    return np.linspace(start, end, num_intervals + 1)


def overlap_per_bin(starts, ends, edges, weights=None):
    """Sum of interval overlap (optionally weighted) falling in each bin.

    Vectorized: each interval decomposes into a partial first bin, a
    partial last bin and a run of fully covered interior bins.  The
    partials are scatter-added; the interior runs accumulate through a
    difference array whose cumulative sum yields, per bin, the total
    weight of the intervals covering it entirely — O(events + bins)
    instead of O(events x bins-spanned).
    """
    num_bins = len(edges) - 1
    totals = np.zeros(num_bins, dtype=np.float64)
    if len(starts) == 0:
        return totals
    starts = np.asarray(starts, dtype=np.float64)
    ends = np.asarray(ends, dtype=np.float64)
    weights = (np.ones(len(starts), dtype=np.float64) if weights is None
               else np.asarray(weights, dtype=np.float64))
    first = np.clip(np.searchsorted(edges, starts, side="right") - 1,
                    0, num_bins - 1)
    last = np.clip(np.searchsorted(edges, ends, side="left") - 1,
                   0, num_bins - 1)
    head = (np.minimum(ends, edges[first + 1])
            - np.maximum(starts, edges[first]))
    np.add.at(totals, first, np.clip(head, 0.0, None) * weights)
    multi = last > first
    if multi.any():
        tail = (np.minimum(ends[multi], edges[last[multi] + 1])
                - edges[last[multi]])
        np.add.at(totals, last[multi],
                  np.clip(tail, 0.0, None) * weights[multi])
        covering = np.zeros(num_bins + 1, dtype=np.float64)
        np.add.at(covering, first[multi] + 1, weights[multi])
        np.add.at(covering, last[multi], -weights[multi])
        totals += np.cumsum(covering[:num_bins]) * np.diff(edges)
    return totals


def state_count_series(trace, state, num_intervals=200, cores=None,
                       start=None, end=None):
    """Average number of workers in ``state`` per interval (Fig. 3)."""
    edges = interval_edges(trace, num_intervals, start, end)
    widths = np.diff(edges)
    cores = range(trace.num_cores) if cores is None else cores
    totals = np.zeros(num_intervals, dtype=np.float64)
    for core in cores:
        states = trace.states.core_column(core, "state")
        keep = states == int(state)
        totals += overlap_per_bin(
            trace.states.core_column(core, "start")[keep],
            trace.states.core_column(core, "end")[keep], edges)
    return edges, totals / widths


def average_task_duration_series(trace, num_intervals=200, task_filter=None,
                                 start=None, end=None):
    """Average duration of the tasks executing in each interval (Fig. 8).

    Each task contributes its *total* duration, weighted by the share of
    the task's execution overlapping the interval — so a bin covered
    only by long tasks reports a high average even if the bin is short.
    Bins without any executing task report 0 (the paper notes the value
    never drops to zero while any task runs).
    """
    edges = interval_edges(trace, num_intervals, start, end)
    columns = filtered_tasks(trace, task_filter)
    starts = columns["start"]
    ends = columns["end"]
    durations = (ends - starts).astype(np.float64)
    weighted = overlap_per_bin(starts, ends, edges, weights=durations)
    coverage = overlap_per_bin(starts, ends, edges)
    averages = np.divide(weighted, coverage,
                         out=np.zeros_like(weighted), where=coverage > 0)
    return edges, averages


def aggregate_counter_series(trace, counter, num_intervals=200, cores=None,
                             start=None, end=None):
    """Global (summed over workers) value of a counter at interval edges.

    Per-worker sample series are linearly interpolated at the bin edges
    and summed — the paper's "derived, aggregating counter [that]
    converts per-worker data into global statistics" (Section III-B).
    Returns ``(edges, totals)`` with one total per edge.
    """
    counter_id = (trace.counter_id(counter) if isinstance(counter, str)
                  else counter)
    edges = interval_edges(trace, num_intervals, start, end)
    totals = np.zeros(len(edges), dtype=np.float64)
    cores = range(trace.num_cores) if cores is None else cores
    for core in cores:
        timestamps, values = trace.counter_samples(core, counter_id)
        if len(timestamps) == 0:
            continue
        totals += np.interp(edges, timestamps, values)
    return edges, totals


def discrete_derivative(edges, values):
    """Difference quotient of a series sampled at ``edges`` (Fig. 10/18).

    Zero-width steps (repeated sample timestamps, e.g. back-to-back task
    boundaries) contribute a rate of 0 rather than dividing by zero.
    """
    edges = np.asarray(edges, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    deltas = np.diff(edges)
    changes = np.diff(values)
    return np.divide(changes, deltas, out=np.zeros_like(changes),
                     where=deltas != 0)


def counter_derivative_series(trace, counter, num_intervals=200, cores=None,
                              start=None, end=None):
    """Discrete derivative of an aggregated counter: rate per cycle."""
    edges, totals = aggregate_counter_series(trace, counter, num_intervals,
                                             cores, start, end)
    return edges, discrete_derivative(edges, totals)


def counter_ratio_series(trace, numerator, denominator, num_intervals=200,
                         cores=None, start=None, end=None):
    """Ratio of the rates of two counters (e.g. misses per cycle)."""
    edges, top = counter_derivative_series(trace, numerator, num_intervals,
                                           cores, start, end)
    __, bottom = counter_derivative_series(trace, denominator,
                                           num_intervals, cores, start, end)
    ratio = np.divide(top, bottom, out=np.zeros_like(top),
                      where=bottom != 0)
    return edges, ratio


def bytes_between_nodes_series(trace, src_node, dst_node, num_intervals=200,
                               start=None, end=None):
    """Bytes per interval flowing from ``src_node`` memory to tasks
    executing on ``dst_node`` (a derived metric from Section II-A.5)."""
    edges = interval_edges(trace, num_intervals, start, end)
    accesses = trace.accesses
    nodes = trace.nodes_of_addresses(accesses["address"])
    executing_node = accesses["core"] // trace.topology.cores_per_node
    keep = (nodes == src_node) & (executing_node == dst_node)
    totals = np.zeros(num_intervals, dtype=np.float64)
    if keep.any():
        bins = np.clip(
            np.searchsorted(edges, accesses["timestamp"][keep],
                            side="right") - 1, 0, num_intervals - 1)
        np.add.at(totals, bins, accesses["size"][keep].astype(np.float64))
    return edges, totals


def task_duration_stats(trace, task_filter=None):
    """(mean, standard deviation) of filtered task durations — the
    numbers the paper reports for the k-means branch fix (Section V)."""
    columns = filtered_tasks(trace, task_filter)
    durations = (columns["end"] - columns["start"]).astype(np.float64)
    if len(durations) == 0:
        return 0.0, 0.0
    return float(durations.mean()), float(durations.std())
