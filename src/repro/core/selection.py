"""Selection and detail views (Fig. 1, box 4).

In the GUI, clicking the timeline selects the state or task under the
cursor and shows detailed textual information: task and state type,
duration, and the sources/destinations of the data read/written by the
task (with their NUMA nodes).  This module implements the same
hit-testing (binary search on the per-core arrays) and detail
assembly, headlessly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from .events import STATE_NAMES, WorkerState
from .index import interval_slice
from .symbols import symbols_from_trace


def task_at(trace, core, time):
    """The :class:`TaskExecution` running on ``core`` at ``time``, or
    ``None`` — the timeline's hit test."""
    starts = trace.tasks.core_column(core, "start")
    ends = trace.tasks.core_column(core, "end")
    selection = interval_slice(starts, ends, time, time + 1)
    if selection.start >= selection.stop:
        return None
    task_id = int(trace.tasks.core_column(core, "task_id")
                  [selection.start])
    return trace.task_by_id(task_id)


def state_at(trace, core, time):
    """The state interval covering ``time`` on ``core``, or ``None``."""
    starts = trace.states.core_column(core, "start")
    ends = trace.states.core_column(core, "end")
    selection = interval_slice(starts, ends, time, time + 1)
    if selection.start >= selection.stop:
        return None
    index = selection.start
    return {
        "state": int(trace.states.core_column(core, "state")[index]),
        "start": int(starts[index]),
        "end": int(ends[index]),
    }


@dataclass
class DataEndpoint:
    """One region (and NUMA node) a task reads from or writes to."""

    region_name: str
    address: int
    size: int
    numa_node: Optional[int]

    def describe(self):
        """One line naming the accessing task and byte count."""
        node = ("node {}".format(self.numa_node)
                if self.numa_node is not None else "unplaced")
        return "{} @0x{:x} ({} bytes, {})".format(
            self.region_name or "<anonymous>", self.address, self.size,
            node)


@dataclass
class TaskDetails:
    """Everything the detailed text view shows for a selected task."""

    task_id: int
    type_name: str
    function_address: int
    source_file: str
    source_line: int
    core: int
    numa_node: int
    start: int
    end: int
    reads: List[DataEndpoint] = field(default_factory=list)
    writes: List[DataEndpoint] = field(default_factory=list)
    counter_increases: Dict[str, float] = field(default_factory=dict)

    @property
    def duration(self):
        """Cycles the selected task executed for."""
        return self.end - self.start

    def describe(self):
        """The multi-line detail panel of the selected task (Fig. 1)."""
        lines = [
            "task {} ({})".format(self.task_id, self.type_name),
            "  work function 0x{:x} at {}:{}".format(
                self.function_address, self.source_file,
                self.source_line),
            "  executed on core {} (NUMA node {})".format(
                self.core, self.numa_node),
            "  interval [{}, {}) — {} cycles".format(
                self.start, self.end, self.duration),
        ]
        if self.reads:
            lines.append("  reads:")
            lines.extend("    " + endpoint.describe()
                         for endpoint in self.reads)
        if self.writes:
            lines.append("  writes:")
            lines.extend("    " + endpoint.describe()
                         for endpoint in self.writes)
        for name, increase in sorted(self.counter_increases.items()):
            lines.append("  {} during execution: {:.0f}".format(
                name, increase))
        return "\n".join(lines)


def _endpoints(trace, accesses, want_writes):
    endpoints = []
    for index in range(len(accesses["address"])):
        if bool(accesses["is_write"][index]) != want_writes:
            continue
        address = int(accesses["address"][index])
        region = trace.region_of(address)
        endpoints.append(DataEndpoint(
            region_name=region.name if region is not None else "",
            address=address,
            size=int(accesses["size"][index]),
            numa_node=trace.node_of_address(address)))
    return endpoints


def task_details(trace, task_id, symbol_table=None):
    """Assemble the full detail view for one task execution."""
    execution = trace.task_by_id(task_id)
    info = trace.task_types[execution.type_id]
    table = symbol_table if symbol_table is not None \
        else symbols_from_trace(trace)
    symbol = table.resolve(info.address)
    accesses = trace.task_accesses(task_id)
    increases = {}
    for description in trace.counter_descriptions:
        timestamps, values = trace.counter_samples(
            execution.core, description.counter_id)
        if len(timestamps) == 0:
            continue
        lo = int(np.searchsorted(timestamps, execution.start, "left"))
        hi = int(np.searchsorted(timestamps, execution.end, "right")) - 1
        lo = min(max(lo, 0), len(values) - 1)
        hi = min(max(hi, lo), len(values) - 1)
        increases[description.name] = float(values[hi] - values[lo])
    return TaskDetails(
        task_id=task_id,
        type_name=symbol.name if symbol is not None else info.name,
        function_address=info.address,
        source_file=info.source_file,
        source_line=info.source_line,
        core=execution.core,
        numa_node=trace.topology.node_of_core(execution.core),
        start=execution.start,
        end=execution.end,
        reads=_endpoints(trace, accesses, want_writes=False),
        writes=_endpoints(trace, accesses, want_writes=True),
        counter_increases=increases)


def describe_selection(trace, core, time):
    """The text-panel content for a click at (core, time): the state,
    plus full task details when a task is under the cursor."""
    state = state_at(trace, core, time)
    if state is None:
        return "core {}: no activity recorded at {}".format(core, time)
    lines = ["core {} at {}: {} [{} .. {})".format(
        core, time, STATE_NAMES.get(WorkerState(state["state"]),
                                    str(state["state"])),
        state["start"], state["end"])]
    execution = task_at(trace, core, time)
    if execution is not None:
        lines.append(task_details(trace, execution.task_id).describe())
    return "\n".join(lines)
