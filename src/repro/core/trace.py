"""In-memory trace representation.

Aftermath keeps simple, efficient data structures for traces
(Section VI-B-c): *one array per core and per type of event, sorted by
timestamp*, so that the events of any time interval can be found with a
binary search.  This module provides:

* :class:`TraceBuilder` — an append-only, columnar accumulator used both
  by the run-time tracer and by the trace-file reader.  Columns are
  ``array.array`` buffers, so building million-event traces does not
  allocate millions of Python objects.
* :class:`Trace` — the immutable, numpy-backed, per-core-sorted trace
  that every analysis and rendering component operates on.

Records may be appended in any order; the builder sorts per core at
:meth:`TraceBuilder.build` time.  (Trace *files* additionally guarantee
per-core timestamp order, which makes this sort cheap — Section VI-A.)
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Tuple

import numpy as np

from .events import (CommEvent, CounterDescription, DiscreteEvent,
                     MemoryAccess, RegionInfo, StateInterval, TaskExecution,
                     TaskTypeInfo)


class RegionLookup:
    """Address -> region / NUMA-node lookup over the placement table.

    The trace file stores placement once per region (Section VI-A);
    this index answers "which node holds this address" for single
    addresses and, vectorized, for whole access columns.  Shared by
    both trace stores (:class:`Trace` and
    :class:`repro.core.columnar.ColumnarTrace`).
    """

    def __init__(self, regions):
        self.regions = sorted(regions, key=lambda region: region.address)
        self._starts = np.asarray(
            [region.address for region in self.regions], dtype=np.int64)
        self._built = False

    def _build(self):
        page_offsets = [0]
        pages = []
        for region in self.regions:
            pages.extend(region.page_nodes)
            page_offsets.append(len(pages))
        self._page_nodes_flat = np.asarray(pages, dtype=np.int64)
        self._page_offsets = np.asarray(page_offsets, dtype=np.int64)
        self._page_counts = np.asarray(
            [len(region.page_nodes) for region in self.regions],
            dtype=np.int64)
        self._ends = np.asarray(
            [region.end for region in self.regions], dtype=np.int64)
        self._built = True

    def region_of(self, address):
        """The :class:`RegionInfo` containing ``address`` or ``None``."""
        if not self.regions:
            return None
        position = int(np.searchsorted(self._starts, address,
                                       side="right")) - 1
        if position < 0:
            return None
        region = self.regions[position]
        if region.address <= address < region.end:
            return region
        return None

    def node_of_address(self, address):
        """NUMA node holding ``address``, or ``None`` outside regions.

        Pages past the end of a region's placement table count as never
        physically allocated, like explicit ``-1`` entries.
        """
        region = self.region_of(address)
        if region is None:
            return None
        page = (address - region.address) // 4096
        if page >= len(region.page_nodes):
            return None
        node = region.page_nodes[page]
        return None if node < 0 else node

    def nodes_of_addresses(self, addresses):
        """Vectorized :meth:`node_of_address`: NUMA node per address.

        Returns an int array; addresses outside any region (or on pages
        that were never physically allocated) map to -1.  The flattened
        page-placement index is built on first use and cached.
        """
        if not self._built:
            self._build()
        addresses = np.asarray(addresses, dtype=np.int64)
        result = np.full(len(addresses), -1, dtype=np.int64)
        if not self.regions or len(addresses) == 0:
            return result
        position = np.searchsorted(self._starts, addresses,
                                   side="right") - 1
        valid = position >= 0
        clipped = np.clip(position, 0, None)
        valid &= addresses < self._ends[clipped]
        if not valid.any():
            return result
        region_index = clipped[valid]
        page = (addresses[valid]
                - self._starts[region_index]) // 4096
        # Pages past a region's placement table were never physically
        # allocated — same as explicit -1 entries.
        placed = page < self._page_counts[region_index]
        nodes = np.full(len(region_index), -1, dtype=np.int64)
        nodes[placed] = self._page_nodes_flat[
            self._page_offsets[region_index[placed]] + page[placed]]
        result[valid] = nodes
        return result


class _Columns:
    """A set of parallel ``array.array('q')`` columns."""

    def __init__(self, names):
        self.names = tuple(names)
        self.columns = {name: array("q") for name in self.names}

    def append(self, *values):
        for name, value in zip(self.names, values):
            self.columns[name].append(int(value))

    def __len__(self):
        return len(self.columns[self.names[0]])

    def to_numpy(self):
        return {name: np.asarray(self.columns[name], dtype=np.int64)
                for name in self.names}


class TraceBuilder:
    """Accumulates trace records and assembles a :class:`Trace`."""

    def __init__(self, topology):
        self.topology = topology
        self._states = _Columns(("core", "state", "start", "end"))
        self._tasks = _Columns(("task_id", "type_id", "core", "start",
                                "end"))
        self._discrete = _Columns(("core", "kind", "timestamp", "payload"))
        self._comm = _Columns(("src_core", "dst_core", "timestamp", "size",
                               "task_id"))
        self._accesses = _Columns(("task_id", "core", "address", "size",
                                   "is_write", "timestamp"))
        self._counter_times: Dict[Tuple[int, int], array] = {}
        self._counter_values: Dict[Tuple[int, int], array] = {}
        self.counter_descriptions: List[CounterDescription] = []
        self.task_types: List[TaskTypeInfo] = []
        self.regions: List[RegionInfo] = []

    # -- static records ---------------------------------------------------
    def describe_counter(self, name, monotone=True):
        """Register a counter; returns its id."""
        counter_id = len(self.counter_descriptions)
        self.counter_descriptions.append(
            CounterDescription(counter_id=counter_id, name=name,
                               monotone=monotone))
        return counter_id

    def describe_task_type(self, info):
        """Register a :class:`TaskTypeInfo` static record."""
        self.task_types.append(info)

    def describe_region(self, info):
        """Register a :class:`RegionInfo` static record."""
        self.regions.append(info)

    # -- event records ----------------------------------------------------
    def state_interval(self, core, state, start, end):
        """Append one worker-state interval record."""
        if end > start:
            self._states.append(core, state, start, end)

    def task_execution(self, task_id, type_id, core, start, end):
        """Append one task-execution record."""
        self._tasks.append(task_id, type_id, core, start, end)

    def discrete_event(self, core, kind, timestamp, payload=0):
        """Append one discrete (point) event record."""
        self._discrete.append(core, kind, timestamp, payload)

    def comm_event(self, src_core, dst_core, timestamp, size=0, task_id=-1):
        """Append one communication event record."""
        self._comm.append(src_core, dst_core, timestamp, size, task_id)

    def memory_access(self, task_id, core, address, size, is_write,
                      timestamp):
        """Append one memory-access record."""
        self._accesses.append(task_id, core, address, size,
                              1 if is_write else 0, timestamp)

    def counter_sample(self, core, counter_id, timestamp, value):
        """Append one counter sample for a core's counter."""
        key = (core, counter_id)
        times = self._counter_times.get(key)
        if times is None:
            times = self._counter_times[key] = array("q")
            self._counter_values[key] = array("d")
        times.append(int(timestamp))
        self._counter_values[key].append(float(value))

    def build(self):
        """Freeze the accumulated records into a :class:`Trace`."""
        counter_series = {}
        for key, times in self._counter_times.items():
            timestamps = np.asarray(times, dtype=np.int64)
            values = np.asarray(self._counter_values[key], dtype=np.float64)
            order = np.argsort(timestamps, kind="stable")
            counter_series[key] = (timestamps[order], values[order])
        return Trace(topology=self.topology,
                     states=self._states.to_numpy(),
                     tasks=self._tasks.to_numpy(),
                     discrete=self._discrete.to_numpy(),
                     comm=self._comm.to_numpy(),
                     accesses=self._accesses.to_numpy(),
                     counter_series=counter_series,
                     counter_descriptions=list(self.counter_descriptions),
                     task_types=list(self.task_types),
                     regions=list(self.regions))


class EventViewMixin:
    """Object-model views shared by the two trace stores.

    Everything here is written against the duck-typed columnar surface
    both stores provide — ``.states`` / ``.tasks`` / ``.discrete`` with
    ``.columns``, the ``.comm`` / ``.accesses`` column dicts,
    ``.counter_series``, ``.counter_descriptions`` and
    ``._region_lookup`` — so :class:`Trace` and
    :class:`repro.core.columnar.ColumnarTrace` share one
    implementation and cannot drift apart.
    """

    # -- counters -------------------------------------------------------
    def counter_id(self, name):
        """Counter id for a name (ids pass through unchanged)."""
        for description in self.counter_descriptions:
            if description.name == name:
                return description.counter_id
        raise KeyError("no counter named {!r}".format(name))

    def counter_name(self, counter_id):
        """Counter name for an id."""
        return self.counter_descriptions[counter_id].name

    def counter_samples(self, core, counter_id):
        """(timestamps, values) arrays for one counter on one core."""
        empty = (np.empty(0, dtype=np.int64),
                 np.empty(0, dtype=np.float64))
        return self.counter_series.get((core, counter_id), empty)

    def minmax_tree(self, core, counter_id, arity=None):
        """The n-ary min/max tree of one counter on one core, memoized.

        Section VI-B-c builds these once per (core, counter) at load
        time; memoizing them on the store gives the same effect lazily:
        the first frame of a counter overlay builds the tree, every
        later zoom/pan frame reuses it.  Shared by
        :class:`~repro.core.interval_tree.CounterIndex`,
        :func:`~repro.render.counter_overlay.value_bounds` and the
        vectorized render kernels.
        """
        from .interval_tree import DEFAULT_ARITY, MinMaxTree
        arity = DEFAULT_ARITY if arity is None else arity
        trees = getattr(self, "_minmax_trees", None)
        if trees is None:
            trees = {}
            self._minmax_trees = trees
        key = (core, counter_id, arity)
        tree = trees.get(key)
        if tree is None:
            __, values = self.counter_samples(core, counter_id)
            pyramids = getattr(self, "pyramids", None)
            if pyramids is not None:
                # A memory-mapped store serves the persisted pyramid
                # levels instead of rebuilding the tree: first frame
                # after reopen touches O(header) bytes, not the lane.
                tree = pyramids.counter_tree(core, counter_id, values,
                                             arity)
            if tree is None:
                tree = MinMaxTree(values, arity=arity)
            trees[key] = tree
        return tree

    def counter_columns(self, core, counter_id, view):
        """Persisted pixel columns for a counter lane under ``view``,
        or ``None`` when they cannot serve it.

        A mapped store carries pre-rendered whole-trace columns at the
        standard tile widths (written by the render kernel itself, so
        they are bit-identical to rendering live).  They apply only to
        a fit view — full time bounds, aggregated regime, persisted
        width; anything else falls back to the kernel.  Returns the
        ``(xs, vmins, vmaxs)`` triple the kernel would have produced.
        """
        pyramids = getattr(self, "pyramids", None)
        if pyramids is None:
            return None
        if (view.start, view.end) != (self.begin, self.end):
            return None
        if view.duration < view.width:
            return None
        columns = pyramids.counter_columns(core, counter_id, view.width)
        if columns is None:
            return None
        vmins, vmaxs = columns
        xs = np.flatnonzero(~np.isnan(vmins))
        return xs, vmins[xs], vmaxs[xs]

    def state_index(self, core):
        """One core's exact per-state coverage index, memoized.

        Served from the sidecar's persisted pyramid on memory-mapped
        stores, built lazily from the state lane otherwise; ``None``
        when the lane cannot be indexed (overlapping intervals within
        a state), in which case rendering falls back to the reference
        walk.  See :class:`repro.core.pyramid.StateIndex`.
        """
        from .pyramid import StateIndex
        cache = getattr(self, "_state_indexes", None)
        if cache is None:
            cache = {}
            self._state_indexes = cache
        if core in cache:
            return cache[core]
        index = None
        pyramids = getattr(self, "pyramids", None)
        if pyramids is not None:
            index = pyramids.state_index(core)
        if index is None:
            index = StateIndex.build(
                self.states.core_column(core, "start"),
                self.states.core_column(core, "end"),
                self.states.core_column(core, "state"))
        cache[core] = index
        return index

    def state_tiles(self, core):
        """One core's dominant-state + event-count tiles, memoized.

        Served from the sidecar's persisted pyramid on memory-mapped
        stores, built lazily otherwise; ``None`` when the lane cannot
        be indexed.  See :class:`repro.core.pyramid.StateTiles`.
        """
        from .pyramid import build_state_tiles
        cache = getattr(self, "_state_tiles", None)
        if cache is None:
            cache = {}
            self._state_tiles = cache
        if core in cache:
            return cache[core]
        tiles = None
        pyramids = getattr(self, "pyramids", None)
        if pyramids is not None:
            tiles = pyramids.state_tiles(core)
        if tiles is None:
            index = self.state_index(core)
            if index is not None:
                tiles = build_state_tiles(
                    index, self.states.core_column(core, "start"),
                    self.begin, self.end)
        cache[core] = tiles
        return tiles

    # -- per-event dataclass views ------------------------------------
    def task_by_id(self, task_id):
        """The :class:`TaskExecution` for a task id (raises
        ``KeyError``).  The id -> row index is built on first use."""
        index = getattr(self, "_task_index", None)
        if index is None:
            ids = self.tasks.columns["task_id"]
            index = self._task_index = {
                int(value): position
                for position, value in enumerate(ids)}
        position = index[task_id]
        columns = self.tasks.columns
        return TaskExecution(task_id=int(columns["task_id"][position]),
                             type_id=int(columns["type_id"][position]),
                             core=int(columns["core"][position]),
                             start=int(columns["start"][position]),
                             end=int(columns["end"][position]))

    def task_executions(self):
        """Iterate all task executions (analysis convenience)."""
        columns = self.tasks.columns
        for position in range(len(self.tasks)):
            yield TaskExecution(task_id=int(columns["task_id"][position]),
                                type_id=int(columns["type_id"][position]),
                                core=int(columns["core"][position]),
                                start=int(columns["start"][position]),
                                end=int(columns["end"][position]))

    def state_intervals(self):
        """Iterate :class:`StateInterval` dataclasses (optionally one core)."""
        columns = self.states.columns
        for position in range(len(self.states)):
            yield StateInterval(core=int(columns["core"][position]),
                                state=int(columns["state"][position]),
                                start=int(columns["start"][position]),
                                end=int(columns["end"][position]))

    def discrete_events(self):
        """Iterate :class:`DiscreteEvent` dataclasses (optionally one core)."""
        columns = self.discrete.columns
        for position in range(len(self.discrete)):
            yield DiscreteEvent(core=int(columns["core"][position]),
                                kind=int(columns["kind"][position]),
                                timestamp=int(
                                    columns["timestamp"][position]),
                                payload=int(columns["payload"][position]))

    def comm_events(self):
        """Iterate :class:`CommEvent` dataclasses (optionally one source
        core)."""
        columns = self.comm
        for position in range(len(columns["timestamp"])):
            yield CommEvent(src_core=int(columns["src_core"][position]),
                            dst_core=int(columns["dst_core"][position]),
                            timestamp=int(columns["timestamp"][position]),
                            size=int(columns["size"][position]),
                            task_id=int(columns["task_id"][position]))

    def memory_accesses(self):
        """Iterate :class:`MemoryAccess` dataclasses (optionally one task)."""
        columns = self.accesses
        for position in range(len(columns["task_id"])):
            yield MemoryAccess(
                task_id=int(columns["task_id"][position]),
                core=int(columns["core"][position]),
                address=int(columns["address"][position]),
                size=int(columns["size"][position]),
                is_write=bool(columns["is_write"][position]),
                timestamp=int(columns["timestamp"][position]))

    # -- task accesses ----------------------------------------------------
    def task_accesses(self, task_id):
        """Column slices of the memory accesses of one task."""
        ids = self.accesses["task_id"]
        lo = int(np.searchsorted(ids, task_id, side="left"))
        hi = int(np.searchsorted(ids, task_id, side="right"))
        return {name: values[lo:hi]
                for name, values in self.accesses.items()}

    # -- memory regions -----------------------------------------------
    def region_of(self, address):
        """The :class:`RegionInfo` containing ``address`` or ``None``."""
        return self._region_lookup.region_of(address)

    def node_of_address(self, address):
        """NUMA node holding ``address`` (via the region placement
        table), or ``None`` for addresses outside any known region."""
        return self._region_lookup.node_of_address(address)

    def nodes_of_addresses(self, addresses):
        """Vectorized :meth:`node_of_address` (see
        :meth:`RegionLookup.nodes_of_addresses`)."""
        return self._region_lookup.nodes_of_addresses(addresses)

    # -- columnar store ---------------------------------------------------
    def to_columnar(self):
        """The per-core structured-array form of this trace (see
        :mod:`repro.core.columnar`); a no-copy ``self`` when already
        columnar."""
        from .columnar import ColumnarTrace
        if isinstance(self, ColumnarTrace):
            return self
        return ColumnarTrace.from_trace(self)


class PerCoreEvents:
    """Per-core views of a sorted columnar event table."""

    def __init__(self, columns, core_column, sort_key, num_cores):
        order = np.lexsort((columns[sort_key], columns[core_column]))
        self.columns = {name: values[order]
                        for name, values in columns.items()}
        cores = self.columns[core_column]
        # offsets[c]:offsets[c+1] is the slice of events of core c.
        self.offsets = np.searchsorted(cores, np.arange(num_cores + 1))
        self._sort_key = sort_key

    def __len__(self):
        return len(self.columns[self._sort_key])

    def core_slice(self, core):
        """Slice of the concatenated columns covering one core."""
        return slice(int(self.offsets[core]), int(self.offsets[core + 1]))

    def core_column(self, core, name):
        """One column restricted to one core's events."""
        return self.columns[name][self.core_slice(core)]


class Trace(EventViewMixin):
    """An immutable, indexed trace ready for analysis and rendering."""

    def __init__(self, topology, states, tasks, discrete, comm, accesses,
                 counter_series, counter_descriptions, task_types, regions):
        self.topology = topology
        num_cores = topology.num_cores
        self.states = PerCoreEvents(states, "core", "start", num_cores)
        self.tasks = PerCoreEvents(tasks, "core", "start", num_cores)
        self.discrete = PerCoreEvents(discrete, "core", "timestamp",
                                      num_cores)
        order = np.argsort(comm["timestamp"], kind="stable")
        self.comm = {name: values[order] for name, values in comm.items()}
        order = np.argsort(accesses["task_id"], kind="stable")
        self.accesses = {name: values[order]
                         for name, values in accesses.items()}
        self.counter_series = counter_series
        self.counter_descriptions = list(counter_descriptions)
        self.task_types = list(task_types)
        self._region_lookup = RegionLookup(regions)
        self.regions = self._region_lookup.regions
        self.begin, self.end = self._time_bounds()

    # -- global properties --------------------------------------------
    @property
    def num_cores(self):
        """Total cores of the traced machine."""
        return self.topology.num_cores

    @property
    def duration(self):
        """Cycles between the first and last event."""
        return self.end - self.begin

    def _time_bounds(self):
        begin, end = [], []
        if len(self.states):
            begin.append(int(self.states.columns["start"].min()))
            end.append(int(self.states.columns["end"].max()))
        if len(self.tasks):
            begin.append(int(self.tasks.columns["start"].min()))
            end.append(int(self.tasks.columns["end"].max()))
        for timestamps, __ in self.counter_series.values():
            if len(timestamps):
                begin.append(int(timestamps[0]))
                end.append(int(timestamps[-1]))
        if not begin:
            return 0, 0
        return min(begin), max(end)

    def __repr__(self):
        return ("Trace(cores={}, states={}, tasks={}, accesses={}, "
                "counters={})".format(
                    self.num_cores, len(self.states), len(self.tasks),
                    len(self.accesses["task_id"]),
                    len(self.counter_descriptions)))


def merge_counter_series(main, aux, counters=None):
    """Merge counter series of a second trace into a new trace.

    The paper collects ``getrusage`` statistics in a *separate* trace
    because concurrent calls to the function perturb the run
    (Section III-B); the analysis then needs the auxiliary counters
    joined with the main trace.  This returns a new :class:`Trace`
    carrying ``main``'s events plus the selected ``counters`` (names;
    default: all) from ``aux``, re-numbered to avoid id collisions.
    Name clashes get an ``aux:`` prefix.

    Both traces must describe the same machine.
    """
    if (aux.topology.num_nodes != main.topology.num_nodes
            or aux.topology.cores_per_node
            != main.topology.cores_per_node):
        raise ValueError("traces describe different machines")
    wanted = ({description.name
               for description in aux.counter_descriptions}
              if counters is None else set(counters))
    existing = {description.name
                for description in main.counter_descriptions}
    descriptions = list(main.counter_descriptions)
    series = dict(main.counter_series)
    id_map = {}
    for description in aux.counter_descriptions:
        if description.name not in wanted:
            continue
        name = description.name
        if name in existing:
            name = "aux:" + name
        new_id = len(descriptions)
        id_map[description.counter_id] = new_id
        descriptions.append(CounterDescription(
            counter_id=new_id, name=name,
            monotone=description.monotone))
    for (core, counter_id), data in aux.counter_series.items():
        if counter_id in id_map:
            series[(core, id_map[counter_id])] = data
    return Trace(topology=main.topology,
                 states=dict(main.states.columns),
                 tasks=dict(main.tasks.columns),
                 discrete=dict(main.discrete.columns),
                 comm=dict(main.comm),
                 accesses=dict(main.accesses),
                 counter_series=series,
                 counter_descriptions=descriptions,
                 task_types=list(main.task_types),
                 regions=list(main.regions))
