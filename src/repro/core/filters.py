"""Task filters (Section II-A.3).

Filters control what the timeline, the statistical views and the export
facilities operate on: "only tasks of a specific type, tasks whose
execution duration is in a certain range or tasks that write to certain
NUMA nodes".  A filter produces a boolean mask aligned with the trace's
task-execution table; filters compose with ``&``, ``|`` and ``~``.
"""

from __future__ import annotations

import numpy as np


class TaskFilter:
    """Base class: subclasses implement :meth:`mask`."""

    def mask(self, trace):
        """Boolean array selecting task executions (one entry per task in
        ``trace.tasks``, in the trace's canonical task order)."""
        raise NotImplementedError

    def count(self, trace):
        """Number of task executions the filter keeps."""
        return int(self.mask(trace).sum())

    def __and__(self, other):
        return _Combined(np.logical_and, self, other)

    def __or__(self, other):
        return _Combined(np.logical_or, self, other)

    def __invert__(self):
        return _Inverted(self)


class _Combined(TaskFilter):
    def __init__(self, combine, left, right):
        self.combine = combine
        self.left = left
        self.right = right

    def mask(self, trace):
        return self.combine(self.left.mask(trace), self.right.mask(trace))


class _Inverted(TaskFilter):
    def __init__(self, inner):
        self.inner = inner

    def mask(self, trace):
        return ~self.inner.mask(trace)


class AllTasks(TaskFilter):
    """The neutral filter: selects everything."""

    def mask(self, trace):
        """Keep-mask over the task columns: everything."""
        return np.ones(len(trace.tasks), dtype=bool)


class TaskTypeFilter(TaskFilter):
    """Tasks whose work function is one of the given types.

    Accepts type names or numeric type ids.
    """

    def __init__(self, *types):
        if not types:
            raise ValueError("TaskTypeFilter needs at least one type")
        self.types = types

    def _type_ids(self, trace):
        by_name = {info.name: info.type_id for info in trace.task_types}
        ids = set()
        for entry in self.types:
            if isinstance(entry, str):
                if entry not in by_name:
                    raise KeyError("unknown task type {!r}".format(entry))
                ids.add(by_name[entry])
            else:
                ids.add(int(entry))
        return ids

    def mask(self, trace):
        """Keep-mask over the task columns: matching type names."""
        ids = self._type_ids(trace)
        type_column = trace.tasks.columns["type_id"]
        return np.isin(type_column, sorted(ids))


class DurationFilter(TaskFilter):
    """Tasks whose execution duration lies in [minimum, maximum]."""

    def __init__(self, minimum=0, maximum=None):
        self.minimum = minimum
        self.maximum = maximum

    def mask(self, trace):
        """Keep-mask over the task columns: durations within bounds."""
        columns = trace.tasks.columns
        durations = columns["end"] - columns["start"]
        selected = durations >= self.minimum
        if self.maximum is not None:
            selected &= durations <= self.maximum
        return selected


class IntervalFilter(TaskFilter):
    """Tasks whose execution overlaps [start, end) — the filter behind
    the user-selected timeline interval feeding the statistics views."""

    def __init__(self, start, end):
        self.start = start
        self.end = end

    def mask(self, trace):
        """Keep-mask over the task columns: executions overlapping the
        interval."""
        columns = trace.tasks.columns
        return ((columns["start"] < self.end)
                & (columns["end"] > self.start))


class CoreFilter(TaskFilter):
    """Tasks executed on the given cores."""

    def __init__(self, cores):
        self.cores = sorted(set(int(core) for core in cores))

    def mask(self, trace):
        """Keep-mask over the task columns: the selected cores."""
        return np.isin(trace.tasks.columns["core"], self.cores)


class NumaNodeFilter(TaskFilter):
    """Tasks that read from / write to given NUMA nodes.

    ``mode`` selects which accesses count: ``"read"``, ``"write"`` or
    ``"any"``.  A task matches when at least one of its accesses of the
    selected kind targets one of the nodes.
    """

    def __init__(self, nodes, mode="write"):
        if mode not in ("read", "write", "any"):
            raise ValueError("mode must be 'read', 'write' or 'any'")
        self.nodes = sorted(set(int(node) for node in nodes))
        self.mode = mode

    def mask(self, trace):
        """Keep-mask over the task columns: cores on the selected nodes."""
        accesses = trace.accesses
        keep = np.ones(len(accesses["task_id"]), dtype=bool)
        if self.mode == "read":
            keep = accesses["is_write"] == 0
        elif self.mode == "write":
            keep = accesses["is_write"] == 1
        nodes = trace.nodes_of_addresses(accesses["address"][keep])
        matching = np.isin(nodes, self.nodes)
        matching_tasks = np.unique(accesses["task_id"][keep][matching])
        return np.isin(trace.tasks.columns["task_id"], matching_tasks)


class PredicateFilter(TaskFilter):
    """Escape hatch: a Python predicate over :class:`TaskExecution`."""

    def __init__(self, predicate):
        self.predicate = predicate

    def mask(self, trace):
        """Keep-mask over the task columns: the user predicate, per task."""
        return np.asarray([bool(self.predicate(execution))
                           for execution in trace.task_executions()],
                          dtype=bool)


def filtered_tasks(trace, task_filter=None):
    """Task-execution columns restricted to a filter (or all tasks)."""
    columns = trace.tasks.columns
    if task_filter is None:
        return dict(columns)
    selected = task_filter.mask(trace)
    return {name: values[selected] for name, values in columns.items()}
