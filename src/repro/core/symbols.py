"""Symbol tables: relating trace elements to source code (Section VI-C).

Aftermath extracts debug symbols from the application binary with the
``nm`` command-line tool; selecting a task in the timeline looks up the
address of its work function and displays the function name, and
clicking it opens the source file at the right line.

The reproduction's "binary" is the simulated program, whose task types
carry synthetic code addresses; :func:`symbols_from_trace` plays the
role of running ``nm``.  Lookup follows ``nm`` semantics: an address
resolves to the nearest symbol at or below it.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class Symbol:
    """One entry of the symbol table."""

    address: int
    name: str
    source_file: str = ""
    source_line: int = 0


class SymbolTable:
    """Sorted symbol table with nearest-below address resolution."""

    def __init__(self, symbols=()):
        self._symbols: List[Symbol] = sorted(symbols,
                                             key=lambda s: s.address)
        self._addresses = [symbol.address for symbol in self._symbols]

    def __len__(self):
        return len(self._symbols)

    def add(self, symbol):
        """Insert one symbol, keeping the table address-sorted."""
        position = bisect.bisect_left(self._addresses, symbol.address)
        self._symbols.insert(position, symbol)
        self._addresses.insert(position, symbol.address)

    def resolve(self, address):
        """The symbol covering ``address`` (nearest at or below), or
        ``None`` when the address precedes every symbol."""
        position = bisect.bisect_right(self._addresses, address) - 1
        if position < 0:
            return None
        return self._symbols[position]

    def by_name(self, name):
        """First symbol with the given name (None when absent)."""
        for symbol in self._symbols:
            if symbol.name == name:
                return symbol
        return None

    def editor_command(self, address, editor="editor"):
        """The command Aftermath runs when the user clicks a function
        name: open the source file at the function's line."""
        symbol = self.resolve(address)
        if symbol is None or not symbol.source_file:
            return None
        return "{} +{} {}".format(editor, symbol.source_line,
                                  symbol.source_file)


def symbols_from_trace(trace):
    """Build the symbol table from the trace's task-type descriptions
    (the reproduction's equivalent of running ``nm`` on the binary)."""
    return SymbolTable(Symbol(address=info.address, name=info.name,
                              source_file=info.source_file,
                              source_line=info.source_line)
                       for info in trace.task_types)


def resolve_task(trace, table, task_id):
    """Name of the work function of a task execution — what the detailed
    text view shows for a selected task."""
    execution = trace.task_by_id(task_id)
    info = trace.task_types[execution.type_id]
    symbol = table.resolve(info.address)
    return symbol.name if symbol is not None else "?"
