"""Semi-automatic detection of performance anomalies.

The paper's conclusion announces "semi-automatic statistical methods to
quickly focus the search for interesting anomalies" as work in
progress.  This module implements that layer on top of the analysis
core: scanners that walk a trace and emit ranked :class:`Anomaly`
findings, each pointing at a time interval (and optionally cores or
task types) worth inspecting in the timeline.

Detectors cover the anomaly families the paper studies manually:

* :func:`detect_idle_phases` — intervals where many workers idle
  simultaneously (Section III-A);
* :func:`detect_duration_outliers` — task types whose duration
  distribution has heavy outliers or is multi-modal (Sections III-B, V);
* :func:`detect_locality_anomalies` — phases with high remote-access
  fractions (Section IV);
* :func:`detect_load_imbalance` — intervals where per-core busy time
  diverges (Section III-C);
* :func:`correlate_counters` — ranks every recorded hardware counter
  by the strength of its linear relationship with task duration, the
  automated form of the Section V investigation;
* :func:`detect_stragglers` / :func:`detect_frequency_throttling` —
  cores that run tasks slower than their peers, for the whole run or
  only inside a time window; the fault-injection scenarios of
  :mod:`repro.runtime.faults` give both planted ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .correlation import counter_rate_per_task, linear_regression
from .events import WorkerState
from .filters import TaskTypeFilter
from .metrics import interval_edges, overlap_per_bin, state_count_series
from .numa import task_node_bytes


@dataclass
class Anomaly:
    """One ranked finding of a detector."""

    kind: str
    severity: float            # detector-specific, higher = worse
    start: int
    end: int
    description: str
    cores: Optional[List[int]] = None
    task_type: Optional[str] = None

    def __repr__(self):
        return ("Anomaly({}, severity={:.2f}, [{} .. {}): {})"
                .format(self.kind, self.severity, self.start, self.end,
                        self.description))


def _merge_flagged_bins(edges, flagged):
    """Contiguous runs of flagged bins -> (start, end, bins) tuples."""
    runs = []
    run_start = None
    for index, hot in enumerate(flagged):
        if hot and run_start is None:
            run_start = index
        elif not hot and run_start is not None:
            runs.append((int(edges[run_start]), int(edges[index]),
                         index - run_start))
            run_start = None
    if run_start is not None:
        runs.append((int(edges[run_start]), int(edges[-1]),
                     len(flagged) - run_start))
    return runs


def detect_idle_phases(trace, num_intervals=200, threshold=0.5):
    """Intervals where more than ``threshold`` of the workers idle.

    This automates the visual detection of the light-blue bands of
    Fig. 2 and the derived-counter confirmation of Fig. 3.
    """
    edges, counts = state_count_series(trace, WorkerState.IDLE,
                                       num_intervals)
    fractions = counts / trace.num_cores
    anomalies = []
    for start, end, bins in _merge_flagged_bins(edges,
                                                fractions >= threshold):
        window = fractions[(edges[:-1] >= start) & (edges[:-1] < end)]
        peak = float(window.max()) if len(window) else threshold
        anomalies.append(Anomaly(
            kind="idle-phase", severity=peak, start=start, end=end,
            description="{:.0%} of workers idle at the peak "
            "({} intervals)".format(peak, bins)))
    anomalies.sort(key=lambda anomaly: -anomaly.severity)
    return anomalies


def detect_duration_outliers(trace, z_threshold=3.0, min_tasks=10):
    """Task types with far-outlying durations (z-score based).

    Returns one anomaly per (type, outlier group), pointing at the
    interval covering the outliers — e.g. seidel's initialization
    tasks stand out against the compute tasks.
    """
    anomalies = []
    columns = trace.tasks.columns
    durations = (columns["end"] - columns["start"]).astype(np.float64)
    if len(durations) < min_tasks:
        return anomalies
    mean = durations.mean()
    std = durations.std()
    if std == 0:
        return anomalies
    scores = (durations - mean) / std
    outliers = scores > z_threshold
    if not outliers.any():
        return anomalies
    type_names = {info.type_id: info.name for info in trace.task_types}
    for type_id in np.unique(columns["type_id"][outliers]):
        mask = outliers & (columns["type_id"] == type_id)
        anomalies.append(Anomaly(
            kind="duration-outlier",
            severity=float(scores[mask].max()),
            start=int(columns["start"][mask].min()),
            end=int(columns["end"][mask].max()),
            task_type=type_names.get(int(type_id)),
            description="{} tasks of type {} are >{:.0f} sigma slower "
            "than the mean ({:.0f} vs {:.0f} cycles)".format(
                int(mask.sum()), type_names.get(int(type_id)),
                z_threshold, durations[mask].mean(), mean)))
    anomalies.sort(key=lambda anomaly: -anomaly.severity)
    return anomalies


def detect_locality_anomalies(trace, num_intervals=20, threshold=0.4):
    """Phases whose remote-access fraction exceeds ``threshold``.

    Automates the NUMA heatmap reading of Fig. 14e/f: a healthy
    NUMA-aware execution stays mostly blue (local).

    Vectorized: the per-task (local, total) byte tallies are computed
    once and scattered onto the interval bins with a difference array
    — the old one-``average_remote_fraction``-call-per-bin loop (kept
    in :mod:`repro.core.reference`) rescanned every access per bin.
    All per-bin sums are integer-valued, so the fractions are
    bit-identical to the reference.
    """
    edges = interval_edges(trace, num_intervals).astype(np.int64)
    matrix = task_node_bytes(trace, "any")
    columns = trace.tasks.columns
    executing_node = columns["core"] // trace.topology.cores_per_node
    total = matrix.sum(axis=1)
    local = matrix[np.arange(len(matrix)), executing_node]
    # A task contributes to every bin it overlaps: bins [first, last].
    first = np.searchsorted(edges, columns["start"], side="right") - 1
    last = np.searchsorted(edges, columns["end"], side="left") - 1
    lo = np.maximum(first, 0)
    hi = np.minimum(last, num_intervals - 1)
    ok = lo <= hi
    local_bins = np.zeros(num_intervals + 1, dtype=np.float64)
    total_bins = np.zeros(num_intervals + 1, dtype=np.float64)
    np.add.at(local_bins, lo[ok], local[ok])
    np.add.at(local_bins, hi[ok] + 1, -local[ok])
    np.add.at(total_bins, lo[ok], total[ok])
    np.add.at(total_bins, hi[ok] + 1, -total[ok])
    local_bins = np.cumsum(local_bins[:num_intervals])
    total_bins = np.cumsum(total_bins[:num_intervals])
    anomalies = []
    for index in range(num_intervals):
        remote = (float(1.0 - local_bins[index] / total_bins[index])
                  if total_bins[index] > 0 else 0.0)
        if remote >= threshold:
            anomalies.append(Anomaly(
                kind="poor-locality", severity=remote,
                start=int(edges[index]), end=int(edges[index + 1]),
                description="{:.0%} of accessed bytes are remote"
                .format(remote)))
    anomalies.sort(key=lambda anomaly: -anomaly.severity)
    return anomalies


def detect_load_imbalance(trace, num_intervals=10, threshold=0.25):
    """Intervals where per-core busy time diverges.

    Severity is the coefficient of variation of per-core RUNNING time
    within the interval; the alternating idle patterns of Fig. 13b/c
    show up here.

    Vectorized: one :func:`~repro.core.metrics.overlap_per_bin` pass
    per core replaces the old one-``per_core_state_time``-call-per-bin
    loop (kept in :mod:`repro.core.reference`); every per-bin overlap
    is an integer in float64, so the coefficients of variation are
    bit-identical to the reference.
    """
    edges = interval_edges(trace, num_intervals).astype(np.int64)
    bin_edges = edges.astype(np.float64)
    busy_per_core = np.zeros((trace.num_cores, num_intervals),
                             dtype=np.float64)
    for core in range(trace.num_cores):
        states = trace.states.core_column(core, "state")
        keep = states == int(WorkerState.RUNNING)
        busy_per_core[core] = overlap_per_bin(
            trace.states.core_column(core, "start")[keep],
            trace.states.core_column(core, "end")[keep], bin_edges)
    anomalies = []
    for index in range(num_intervals):
        start, end = int(edges[index]), int(edges[index + 1])
        busy = busy_per_core[:, index]
        if busy.sum() == 0:
            continue
        cv = float(busy.std() / busy.mean()) if busy.mean() else 0.0
        if cv >= threshold:
            laggards = [int(core) for core in
                        np.flatnonzero(busy < busy.mean() / 2)]
            anomalies.append(Anomaly(
                kind="load-imbalance", severity=cv, start=start, end=end,
                cores=laggards or None,
                description="per-core busy time varies (CV {:.2f}); "
                "{} cores under half the mean".format(cv,
                                                      len(laggards))))
    anomalies.sort(key=lambda anomaly: -anomaly.severity)
    return anomalies


def _per_type_core_means(trace, min_tasks):
    """Per-(core, type) mean task durations and counts.

    Returns ``(means, counts)`` arrays of shape (cores, types) — the
    shared normalization step of the straggler and throttling
    detectors.  Types are normalized separately because a core that
    happens to run only long task types is not slow."""
    columns = trace.tasks.columns
    durations = (columns["end"] - columns["start"]).astype(np.float64)
    num_types = int(columns["type_id"].max()) + 1 if len(durations) \
        else 0
    means = np.zeros((trace.num_cores, num_types), dtype=np.float64)
    counts = np.zeros((trace.num_cores, num_types), dtype=np.int64)
    np.add.at(means, (columns["core"], columns["type_id"]), durations)
    np.add.at(counts, (columns["core"], columns["type_id"]), 1)
    with np.errstate(invalid="ignore"):
        means = np.where(counts > 0, means / np.maximum(counts, 1),
                         np.nan)
    return means, counts


def detect_stragglers(trace, ratio_threshold=1.7, min_tasks=5):
    """Cores that execute tasks consistently slower than their peers.

    The whole-run form of the paper's per-core bottleneck hunts: for
    every task type, the per-core mean duration is compared against
    the *median core's* mean (robust to the stragglers themselves);
    a core whose task-weighted slowdown across types exceeds
    ``ratio_threshold`` is flagged.  One anomaly per straggler core,
    severity = the slowdown ratio.
    """
    anomalies = []
    means, counts = _per_type_core_means(trace, min_tasks)
    if not means.size:
        return anomalies
    # Baseline per type: the median of the per-core means over cores
    # that ran that type (NaN-aware), i.e. the typical core.
    with np.errstate(all="ignore"):
        baseline = np.nanmedian(means, axis=0)
    columns = trace.tasks.columns
    type_names = {info.type_id: info.name for info in trace.task_types}
    for core in range(trace.num_cores):
        ran = (counts[core] > 0) & (baseline > 0)
        total = int(counts[core][ran].sum())
        if total < min_tasks:
            continue
        ratios = means[core][ran] / baseline[ran]
        ratio = float(np.average(ratios, weights=counts[core][ran]))
        if ratio < ratio_threshold:
            continue
        worst = int(np.flatnonzero(ran)[np.argmax(ratios)])
        mask = columns["core"] == core
        anomalies.append(Anomaly(
            kind="straggler-core", severity=ratio,
            start=int(columns["start"][mask].min()),
            end=int(columns["end"][mask].max()), cores=[core],
            description="core {} runs tasks {:.1f}x slower than the "
            "median core (worst type: {})".format(
                core, ratio, type_names.get(worst, worst))))
    anomalies.sort(key=lambda anomaly: -anomaly.severity)
    return anomalies


def detect_frequency_throttling(trace, num_intervals=None,
                                ratio_threshold=1.6, min_tasks=3):
    """Cores that slow down only during part of the run.

    The transient complement of :func:`detect_stragglers` (a DVFS or
    thermal-throttling episode): per-task slowdowns (duration over
    the type's median duration) are binned over time per core and
    compared against the *core's own* median bin — so a core that is
    uniformly slow (a straggler) does not trigger, only one whose
    slowness is localized in time.  One anomaly per throttled episode
    with the flagged window, severity = peak slowdown over the core's
    baseline.

    ``num_intervals=None`` (the default) adapts the bin count to the
    trace so the average core keeps ``2 * min_tasks`` tasks per bin —
    fixed fine binning would starve every bin below ``min_tasks`` on
    small traces and silently disable the detector.
    """
    anomalies = []
    columns = trace.tasks.columns
    if not len(columns["start"]):
        return anomalies
    if num_intervals is None:
        per_core = len(columns["start"]) / max(trace.num_cores, 1)
        num_intervals = int(max(4, min(24,
                                       per_core // (2 * min_tasks))))
    durations = (columns["end"] - columns["start"]).astype(np.float64)
    num_types = int(columns["type_id"].max()) + 1
    type_median = np.zeros(num_types, dtype=np.float64)
    for type_id in range(num_types):
        mask = columns["type_id"] == type_id
        if mask.any():
            type_median[type_id] = np.median(durations[mask])
    ok = type_median[columns["type_id"]] > 0
    slowdown = np.ones(len(durations), dtype=np.float64)
    slowdown[ok] = durations[ok] / type_median[columns["type_id"]][ok]
    edges = interval_edges(trace, num_intervals).astype(np.int64)
    bins = np.clip(np.searchsorted(edges, columns["start"],
                                   side="right") - 1,
                   0, num_intervals - 1)
    for core in range(trace.num_cores):
        on_core = columns["core"] == core
        sums = np.zeros(num_intervals, dtype=np.float64)
        counts = np.zeros(num_intervals, dtype=np.int64)
        np.add.at(sums, bins[on_core], slowdown[on_core])
        np.add.at(counts, bins[on_core], 1)
        valid = counts >= min_tasks
        if valid.sum() < 2:
            continue
        per_bin = np.where(valid, sums / np.maximum(counts, 1), np.nan)
        with np.errstate(all="ignore"):
            core_baseline = float(np.nanmedian(per_bin))
        if not core_baseline > 0:
            continue
        hot = valid & (per_bin >= ratio_threshold * core_baseline)
        for start, end, __ in _merge_flagged_bins(edges, hot):
            window = per_bin[(edges[:-1] >= start) & (edges[:-1] < end)]
            with np.errstate(all="ignore"):
                peak = float(np.nanmax(window) / core_baseline)
            anomalies.append(Anomaly(
                kind="frequency-throttling", severity=peak,
                start=start, end=end, cores=[core],
                description="core {} ran {:.1f}x slower than its own "
                "baseline in this window".format(core, peak)))
    anomalies.sort(key=lambda anomaly: -anomaly.severity)
    return anomalies


@dataclass
class CounterCorrelation:
    """Strength of the duration ~ counter-rate relationship."""

    counter: str
    task_type: str
    r_squared: float
    slope: float
    samples: int


def correlate_counters(trace, task_filter=None, min_tasks=10,
                       require_positive_slope=True):
    """Rank all counters by their correlation with task duration.

    The automated Section V: instead of hand-picking branch
    mispredictions, fit every recorded counter and return the ranking.

    ``require_positive_slope`` drops inverse relationships: a counter
    whose per-task increment is roughly constant trivially anticorrelates
    its *rate* with duration (rate = constant / duration), which never
    explains slowness.  Only counters whose rate *increases* duration
    are candidates for a causal story like Fig. 19's.
    """
    results = []
    type_names = [info.name for info in trace.task_types]
    filters = ([(name, TaskTypeFilter(name)) for name in type_names]
               if task_filter is None else [("<filtered>", task_filter)])
    for type_name, current in filters:
        if current.count(trace) < min_tasks:
            continue
        for description in trace.counter_descriptions:
            columns, rates = counter_rate_per_task(
                trace, description.counter_id, current)
            durations = (columns["end"] - columns["start"]).astype(float)
            if len(rates) < min_tasks or np.ptp(rates) == 0:
                continue
            fit = linear_regression(rates, durations)
            if require_positive_slope and fit.slope <= 0:
                continue
            results.append(CounterCorrelation(
                counter=description.name, task_type=type_name,
                r_squared=fit.r_squared, slope=fit.slope,
                samples=fit.samples))
    results.sort(key=lambda entry: -entry.r_squared)
    return results


def scan(trace, num_intervals=100):
    """Run every detector and return all findings, ranked by severity
    within each kind — the "quickly focus the search" entry point."""
    findings = []
    findings.extend(detect_idle_phases(trace, num_intervals))
    findings.extend(detect_duration_outliers(trace))
    if len(trace.accesses["task_id"]):
        findings.extend(detect_locality_anomalies(trace))
    findings.extend(detect_load_imbalance(trace))
    findings.extend(detect_stragglers(trace))
    findings.extend(detect_frequency_throttling(trace))
    return findings
