"""Per-task NUMA locality analysis (Section IV).

The NUMA timeline modes color every task by the node containing the
largest fraction of the data it reads (or writes), and the NUMA heatmap
shades tasks by their fraction of remote accesses.  Both quantities are
derived from the trace's memory accesses and the per-region placement
table; this module computes them for all tasks at once, vectorized.
"""

from __future__ import annotations

import numpy as np


def _task_positions(trace, access_task_ids):
    """Row index in the canonical task table for each access.

    Returns ``(positions, known)``: accesses whose task id has no row
    in the task table (a dangling reference — the format does not
    forbid them) are flagged ``False`` in ``known`` and carry an
    arbitrary in-range position that callers must mask out.
    """
    all_ids = trace.tasks.columns["task_id"]
    order = np.argsort(all_ids)
    sorted_ids = all_ids[order]
    found = np.searchsorted(sorted_ids, access_task_ids)
    clipped = np.minimum(found, len(sorted_ids) - 1)
    known = sorted_ids[clipped] == access_task_ids
    return order[clipped], known


def task_node_bytes(trace, kind="read"):
    """Bytes accessed per (task, NUMA node).

    Returns a ``(num_tasks, num_nodes)`` matrix aligned with the trace's
    canonical task order.  ``kind`` is ``"read"``, ``"write"`` or
    ``"any"``.
    """
    num_tasks = len(trace.tasks)
    num_nodes = trace.topology.num_nodes
    matrix = np.zeros((num_tasks, num_nodes), dtype=np.float64)
    accesses = trace.accesses
    if len(accesses["task_id"]) == 0 or num_tasks == 0:
        return matrix
    keep = np.ones(len(accesses["task_id"]), dtype=bool)
    if kind == "read":
        keep = accesses["is_write"] == 0
    elif kind == "write":
        keep = accesses["is_write"] == 1
    nodes = trace.nodes_of_addresses(accesses["address"][keep])
    valid = nodes >= 0
    positions, known = _task_positions(trace,
                                       accesses["task_id"][keep][valid])
    flat_keys = positions[known] * num_nodes + nodes[valid][known]
    totals = np.bincount(flat_keys,
                         weights=accesses["size"][keep][valid][known],
                         minlength=num_tasks * num_nodes)
    return totals.reshape(num_tasks, num_nodes)


def task_predominant_nodes(trace, kind="read"):
    """The NUMA node holding most of each task's accessed data.

    Array aligned with the canonical task order; -1 for tasks without
    accesses of the requested kind (rendered as background).
    """
    matrix = task_node_bytes(trace, kind)
    result = np.argmax(matrix, axis=1)
    result[matrix.sum(axis=1) == 0] = -1
    return result


def task_remote_fractions(trace, kind="any"):
    """Fraction of each task's accessed bytes served by remote nodes,
    relative to the node of the executing core (Fig. 14e/f).

    Tasks without accesses report 0 (all-local).
    """
    matrix = task_node_bytes(trace, kind)
    executing_node = (trace.tasks.columns["core"]
                      // trace.topology.cores_per_node)
    total = matrix.sum(axis=1)
    local = matrix[np.arange(len(matrix)), executing_node]
    remote = total - local
    return np.divide(remote, total, out=np.zeros_like(total),
                     where=total > 0)


def average_remote_fraction(trace, kind="any", start=None, end=None):
    """Traffic-weighted remote-access fraction over an interval."""
    matrix = task_node_bytes(trace, kind)
    executing_node = (trace.tasks.columns["core"]
                      // trace.topology.cores_per_node)
    keep = np.ones(len(matrix), dtype=bool)
    if start is not None:
        keep &= trace.tasks.columns["end"] > start
    if end is not None:
        keep &= trace.tasks.columns["start"] < end
    matrix = matrix[keep]
    if matrix.sum() == 0:
        return 0.0
    local = matrix[np.arange(len(matrix)), executing_node[keep]].sum()
    return float(1.0 - local / matrix.sum())
