"""Schedule-quality analysis: critical paths, scheduling delays and
per-type time profiles.

These analyses quantify what the timeline shows visually:

* :func:`critical_path_report` — the longest duration-weighted
  dependence chain of the execution.  Its length is the theoretical
  minimum makespan on infinitely many cores; the ratio of total work
  to critical path bounds the achievable speedup (the quantitative
  form of the paper's available-parallelism argument, Section III-A).
* :func:`scheduling_delays` — per task, the gap between the moment it
  *became ready* (all dependences resolved) and the moment it started
  executing.  Large delays with idle cores elsewhere indicate load
  balancing problems; large delays without idle cores indicate
  saturation.
* :func:`task_type_profile` — how the execution time decomposes over
  task types (the typemap of Fig. 9, as numbers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .taskgraph import reconstruct_task_graph


@dataclass
class CriticalPathReport:
    """Summary of the duration-weighted critical path."""

    length_cycles: int
    path: List[int]
    total_work_cycles: int
    makespan: int

    @property
    def max_speedup(self):
        """Upper bound on speedup over serial execution (work / span)."""
        if self.length_cycles == 0:
            return 1.0
        return self.total_work_cycles / self.length_cycles

    @property
    def schedule_efficiency(self):
        """How close the makespan came to the critical-path bound."""
        if self.makespan == 0:
            return 1.0
        return self.length_cycles / self.makespan

    def describe(self):
        """Human-readable critical-path summary panel."""
        return ("critical path: {} cycles over {} tasks; total work "
                "{} cycles; max speedup {:.1f}x; makespan {} "
                "({:.0%} of it is the critical path)".format(
                    self.length_cycles, len(self.path),
                    self.total_work_cycles, self.max_speedup,
                    self.makespan, self.schedule_efficiency))


def critical_path_report(trace, graph=None):
    """Compute the duration-weighted critical path of an execution."""
    graph = reconstruct_task_graph(trace) if graph is None else graph
    columns = trace.tasks.columns
    durations = {
        int(columns["task_id"][index]):
            int(columns["end"][index] - columns["start"][index])
        for index in range(len(trace.tasks))
    }
    length, path = graph.critical_path(weights=durations)
    return CriticalPathReport(
        length_cycles=int(length), path=path,
        total_work_cycles=int(sum(durations.values())),
        makespan=int(trace.end - trace.begin))


def scheduling_delays(trace, graph=None):
    """Per-task delay between readiness and execution start.

    Readiness is reconstructed from the dependence graph: a task is
    ready when its last dependence completed (tasks without
    dependences are treated as ready at the trace begin, which charges
    them their creation wait — a deliberate upper bound).  Returns a
    dict task id -> delay in cycles.
    """
    graph = reconstruct_task_graph(trace) if graph is None else graph
    columns = trace.tasks.columns
    start = {}
    end = {}
    for index in range(len(trace.tasks)):
        task_id = int(columns["task_id"][index])
        start[task_id] = int(columns["start"][index])
        end[task_id] = int(columns["end"][index])
    delays = {}
    for task_id in graph.nodes:
        predecessors = graph.predecessors[task_id]
        ready = (max(end[dep] for dep in predecessors)
                 if predecessors else trace.begin)
        delays[task_id] = max(0, start[task_id] - ready)
    return delays


@dataclass
class TypeProfileEntry:
    """Aggregate execution statistics of one task type."""

    type_name: str
    tasks: int
    total_cycles: int
    mean_cycles: float
    share_of_execution: float


def task_type_profile(trace):
    """Execution-time decomposition over task types (Fig. 9 as numbers).

    Entries are sorted by total time, descending.
    """
    columns = trace.tasks.columns
    durations = (columns["end"] - columns["start"]).astype(np.int64)
    names = {info.type_id: info.name for info in trace.task_types}
    total = int(durations.sum())
    entries = []
    for type_id in np.unique(columns["type_id"]):
        mask = columns["type_id"] == type_id
        cycles = int(durations[mask].sum())
        entries.append(TypeProfileEntry(
            type_name=names.get(int(type_id), str(int(type_id))),
            tasks=int(mask.sum()),
            total_cycles=cycles,
            mean_cycles=float(durations[mask].mean()),
            share_of_execution=cycles / total if total else 0.0))
    entries.sort(key=lambda entry: -entry.total_cycles)
    return entries


def describe_profile(entries):
    """Render a task-type profile as an aligned text table."""
    lines = ["{:24s} {:>8s} {:>14s} {:>12s} {:>7s}".format(
        "type", "tasks", "total cycles", "mean", "share")]
    for entry in entries:
        lines.append("{:24s} {:8d} {:14d} {:12.0f} {:6.1%}".format(
            entry.type_name, entry.tasks, entry.total_cycles,
            entry.mean_cycles, entry.share_of_execution))
    return "\n".join(lines)
