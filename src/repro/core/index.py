"""Binary-search indexing of per-core event arrays (Section VI-B-c).

Aftermath stores one array per core and per event type, sorted by
timestamp, and finds the array slice containing the events of any
interval with a fast binary search.  These helpers implement the
interval queries used by every timeline mode and statistics view.

State intervals on one core never overlap, and task executions on one
core never overlap, so for those both the ``start`` and the ``end``
columns are sorted — which is what makes the slice computable with two
binary searches.
"""

from __future__ import annotations

import numpy as np


def interval_slice(starts, ends, query_start, query_end):
    """Slice of sorted, non-overlapping intervals overlapping a query.

    ``starts``/``ends`` are the per-core sorted columns; the result
    selects every interval with ``start < query_end and end > query_start``.
    """
    lo = int(np.searchsorted(ends, query_start, side="right"))
    hi = int(np.searchsorted(starts, query_end, side="left"))
    return slice(lo, max(lo, hi))


def point_slice(timestamps, query_start, query_end):
    """Slice of sorted point events falling inside [query_start, query_end)."""
    lo = int(np.searchsorted(timestamps, query_start, side="left"))
    hi = int(np.searchsorted(timestamps, query_end, side="left"))
    return slice(lo, max(lo, hi))


def states_in_interval(trace, core, query_start, query_end):
    """Column dict of the state intervals of ``core`` overlapping a query."""
    starts = trace.states.core_column(core, "start")
    ends = trace.states.core_column(core, "end")
    selection = interval_slice(starts, ends, query_start, query_end)
    return {name: trace.states.core_column(core, name)[selection]
            for name in ("state", "start", "end")}


def tasks_in_interval(trace, core, query_start, query_end):
    """Column dict of the task executions of ``core`` overlapping a query."""
    starts = trace.tasks.core_column(core, "start")
    ends = trace.tasks.core_column(core, "end")
    selection = interval_slice(starts, ends, query_start, query_end)
    return {name: trace.tasks.core_column(core, name)[selection]
            for name in ("task_id", "type_id", "start", "end")}


def counter_samples_in_interval(trace, core, counter_id, query_start,
                                query_end, pad=1):
    """Counter samples of an interval, padded by ``pad`` samples on each
    side so that line rendering can interpolate across the boundary."""
    timestamps, values = trace.counter_samples(core, counter_id)
    selection = point_slice(timestamps, query_start, query_end)
    lo = max(0, selection.start - pad)
    hi = min(len(timestamps), selection.stop + pad)
    return timestamps[lo:hi], values[lo:hi]


def discrete_in_interval(trace, core, query_start, query_end, kind=None):
    """Column dict of the discrete events of ``core`` inside a query."""
    timestamps = trace.discrete.core_column(core, "timestamp")
    selection = point_slice(timestamps, query_start, query_end)
    columns = {name: trace.discrete.core_column(core, name)[selection]
               for name in ("kind", "timestamp", "payload")}
    if kind is not None:
        keep = columns["kind"] == int(kind)
        columns = {name: values[keep] for name, values in columns.items()}
    return columns
