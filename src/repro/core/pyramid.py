"""Persisted render pre-aggregates for timeline lanes (Section VI-B).

The counter side of the paper's scalable-rendering story is the n-ary
min/max tree (:mod:`repro.core.interval_tree`); this module supplies
the timeline side: per-core *state pyramids* that answer the two
questions a frame asks — "which state dominates this pixel's time
interval?" and "how busy is this tile?" — without scanning the state
lane.  Both structures are exact (no sampling), so the pyramid-served
render path stays bit-identical to the scalar reference walk, and both
serialize as flat integer arrays, so the ``.ostc`` sidecar can persist
them and map them back lazily.

Two layers:

* :class:`StateIndex` — the pyramid's exact base: per-state sorted
  interval arrays plus cumulative-duration prefix sums.  The coverage
  of state ``s`` within ``[t0, t1)`` is ``C_s(t1) - C_s(t0)`` where
  ``C_s`` is answered by one binary search per state, so a frame costs
  O(width * states * log n) regardless of lane size or zoom.
* :class:`StateTiles` — fixed tilings of the trace span (coarse to
  fine), each tile holding its exactly-dominant state and the number
  of intervals starting inside it; these serve whole-trace overview
  strips at O(tiles) and are what the sidecar stores per level.
"""

from __future__ import annotations

import numpy as np

#: Tile counts of the pyramid levels, coarse to fine; levels wider
#: than the trace span are dropped at build time.
TILE_LEVEL_COUNTS = (16, 64, 256, 1024)


class StateIndex:
    """Exact per-state coverage index over one core's state lane.

    Intervals are grouped by state id (ascending); within each group
    they are sorted by start and non-overlapping (guaranteed per core
    by construction of the lane — :meth:`build` validates and returns
    ``None`` otherwise, letting callers fall back to the scalar walk).
    ``cum`` holds, per group, the running sum of interval durations
    with a leading zero, so the coverage of a group up to time ``t``
    is one ``searchsorted`` plus at most one partial interval.
    """

    def __init__(self, state_ids, offsets, starts, ends, cum):
        self.state_ids = np.asarray(state_ids, dtype=np.int64)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.starts = np.asarray(starts, dtype=np.int64)
        self.ends = np.asarray(ends, dtype=np.int64)
        self.cum = np.asarray(cum, dtype=np.int64)

    @classmethod
    def build(cls, starts, ends, states):
        """Index one state lane, or ``None`` if any state's intervals
        overlap (the coverage prefix sums would be wrong)."""
        starts = np.asarray(starts, dtype=np.int64)
        ends = np.asarray(ends, dtype=np.int64)
        states = np.asarray(states, dtype=np.int64)
        keep = states >= 0
        starts, ends, states = starts[keep], ends[keep], states[keep]
        order = np.lexsort((starts, states))
        starts, ends, states = starts[order], ends[order], states[order]
        state_ids, group_sizes = np.unique(states, return_counts=True)
        offsets = np.concatenate(([0], np.cumsum(group_sizes)))
        boundary = np.zeros(len(starts), dtype=bool)
        boundary[offsets[1:-1]] = True
        within = np.ones(len(starts), dtype=bool)
        within[1:] = boundary[1:] | (starts[1:] >= ends[:-1])
        if not within.all():
            return None
        durations = np.maximum(ends - starts, 0)
        cum = np.zeros(len(starts) + len(state_ids), dtype=np.int64)
        for group in range(len(state_ids)):
            lo, hi = offsets[group], offsets[group + 1]
            cum[lo + group + 1:hi + group + 1] = \
                np.cumsum(durations[lo:hi])
        return cls(state_ids, offsets, starts, ends, cum)

    @property
    def num_states(self):
        """Distinct (non-negative) state ids in the lane."""
        return len(self.state_ids)

    def _group(self, group):
        lo, hi = int(self.offsets[group]), int(self.offsets[group + 1])
        return (self.starts[lo:hi], self.ends[lo:hi],
                self.cum[lo + group:hi + group + 1])

    def coverage_before(self, times):
        """Per-state covered cycles in ``[-inf, t)`` for each ``t`` —
        a ``(len(times), num_states)`` matrix of ``C_s(t)``."""
        times = np.asarray(times, dtype=np.int64)
        result = np.zeros((len(times), self.num_states), dtype=np.int64)
        for group in range(self.num_states):
            starts, ends, cum = self._group(group)
            position = np.searchsorted(ends, times, side="right")
            total = cum[position]
            partial = (position < len(starts)) & (starts[
                np.minimum(position, len(starts) - 1)] < times)
            if partial.any():
                where = np.flatnonzero(partial)
                total[where] += (times[where]
                                 - starts[position[where]])
            result[:, group] = total
        return result

    def pixel_keys(self, view):
        """Exactly-dominant state per pixel column (-1 where nothing
        is visible) — the pyramid-served replacement for
        :func:`repro.render.timeline._predominant_keys`, valid in both
        zoom regimes because each pixel's interval is widened to one
        cycle exactly like ``TimelineView.pixel_interval``."""
        result = np.full(view.width, -1, dtype=np.int64)
        if self.num_states == 0:
            return result
        x = np.arange(view.width + 1, dtype=np.int64)
        edges = view.start + view.duration * x // view.width
        t0 = edges[:-1]
        t1 = np.maximum(edges[1:], t0 + 1)
        coverage = self.coverage_before(t1) - self.coverage_before(t0)
        # argmax picks the first (smallest) state on ties, matching the
        # reference walk's max(coverage, key=(coverage, -key)).
        best = np.argmax(coverage, axis=1)
        covered = coverage[np.arange(view.width), best] > 0
        result[covered] = self.state_ids[best[covered]]
        return result

    def dominant_in_edges(self, edges):
        """Exactly-dominant state of each ``[edges[i], edges[i+1])``
        tile (-1 for uncovered tiles) — the tile-build kernel."""
        edges = np.asarray(edges, dtype=np.int64)
        count = len(edges) - 1
        result = np.full(count, -1, dtype=np.int64)
        if self.num_states == 0 or count < 1:
            return result
        cumulative = self.coverage_before(edges)
        coverage = cumulative[1:] - cumulative[:-1]
        best = np.argmax(coverage, axis=1)
        covered = coverage[np.arange(count), best] > 0
        result[covered] = self.state_ids[best[covered]]
        return result


class StateTiles:
    """Dominant-state + event-count tile levels over one core's lane.

    ``levels`` is a coarse-to-fine list of ``(dominant, events)`` int64
    array pairs tiling ``[begin, end)``; tile ``i`` of an ``n``-tile
    level spans ``[edges[i], edges[i+1])`` with the same integer edge
    formula the pixel grid uses, so a width-``n`` overview strip reads
    one persisted level and touches nothing else.
    """

    def __init__(self, begin, end, levels):
        self.begin = int(begin)
        self.end = int(end)
        self.levels = [(np.asarray(dominant, dtype=np.int64),
                        np.asarray(events, dtype=np.int64))
                       for dominant, events in levels]

    def level_counts(self):
        """Tile count of every level, coarse to fine."""
        return [len(dominant) for dominant, __ in self.levels]

    def edges(self, level):
        """Tile edge timestamps of one level (length ``count + 1``)."""
        count = len(self.levels[level][0])
        x = np.arange(count + 1, dtype=np.int64)
        return self.begin + (self.end - self.begin) * x // count

    def level_for_width(self, width):
        """The coarsest level with at least ``width`` tiles (the finest
        level when none is that fine) — the mip-select rule."""
        for level, count in enumerate(self.level_counts()):
            if count >= width:
                return level
        return len(self.levels) - 1

    def dominant(self, level):
        """Dominant-state ids of one level (-1 = uncovered)."""
        return self.levels[level][0]

    def event_counts(self, level):
        """Intervals starting inside each tile of one level."""
        return self.levels[level][1]


def tile_level_counts(span):
    """The tile counts to build for a trace span (coarse to fine):
    the standard :data:`TILE_LEVEL_COUNTS` clipped so no level is
    finer than one cycle per tile."""
    return [count for count in TILE_LEVEL_COUNTS if count <= span]


def build_state_tiles(index, lane_starts, begin, end):
    """Tile one core's lane over ``[begin, end)`` using its
    :class:`StateIndex` for exact dominant states and the raw lane
    starts for event counts.  Returns a :class:`StateTiles` (possibly
    with zero levels for sub-16-cycle traces)."""
    span = int(end) - int(begin)
    lane_starts = np.asarray(lane_starts, dtype=np.int64)
    levels = []
    for count in tile_level_counts(span):
        x = np.arange(count + 1, dtype=np.int64)
        edges = int(begin) + span * x // count
        dominant = index.dominant_in_edges(edges)
        events = np.diff(np.searchsorted(lane_starts, edges,
                                         side="left"))
        levels.append((dominant, events))
    return StateTiles(begin, end, levels)
