"""Task-graph reconstruction and parallelism analysis (Section III-A).

Aftermath reconstructs the application's task graph from the memory
accesses recorded in the trace: a task that reads bytes previously
written by another task depends on it.  The reconstructed DAG supports
the paper's parallelism metric — the number of tasks at a given depth
is an upper bound on the parallelism available at that step of the
computation (Fig. 5) — and can be exported to the DOT format for
visualization with Graphviz (Fig. 4/6).
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Dict, List, Optional, Set, Tuple

import numpy as np


class TaskGraph:
    """A directed acyclic dependence graph over task ids."""

    def __init__(self):
        self.successors: Dict[int, List[int]] = defaultdict(list)
        self.predecessors: Dict[int, List[int]] = defaultdict(list)
        self.nodes: Set[int] = set()
        self._depths: Optional[Dict[int, int]] = None

    def add_node(self, task_id):
        """Ensure a task id exists in the graph (no edges)."""
        self.nodes.add(task_id)

    def add_edge(self, src, dst):
        """Dependence edge: ``dst`` consumes data produced by ``src``."""
        self.nodes.add(src)
        self.nodes.add(dst)
        self.successors[src].append(dst)
        self.predecessors[dst].append(src)
        self._depths = None

    @property
    def num_edges(self):
        """Total dependence edges."""
        return sum(len(out) for out in self.successors.values())

    def roots(self):
        """Tasks without any input dependence (ready upon creation)."""
        return sorted(node for node in self.nodes
                      if not self.predecessors[node])

    def depths(self):
        """Depth of every task: the number of edges on the longest path
        from a dependence-free task (paper's definition, Section III-A).

        Computed by a topological sweep; raises ``ValueError`` on cycles
        (a trace of a real execution can never contain one).
        """
        if self._depths is not None:
            return self._depths
        in_degree = {node: len(self.predecessors[node])
                     for node in self.nodes}
        depth = {node: 0 for node in self.nodes}
        ready = deque(node for node, degree in in_degree.items()
                      if degree == 0)
        visited = 0
        while ready:
            node = ready.popleft()
            visited += 1
            for successor in self.successors[node]:
                depth[successor] = max(depth[successor], depth[node] + 1)
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
        if visited != len(self.nodes):
            raise ValueError("dependence graph contains a cycle")
        self._depths = depth
        return depth

    def depth_of(self, task_id):
        """Longest-path depth of one task."""
        return self.depths()[task_id]

    def max_depth(self):
        """Depth of the deepest task (0 for an empty graph)."""
        depths = self.depths()
        return max(depths.values()) if depths else 0

    def parallelism_profile(self):
        """Available parallelism as a function of depth (Fig. 5).

        Returns ``(depths, counts)`` arrays: ``counts[i]`` tasks sit at
        depth ``depths[i]`` — an upper bound on the tasks simultaneously
        ready at that step of the computation.
        """
        depths = self.depths()
        if not depths:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        values = np.asarray(sorted(depths.values()), dtype=np.int64)
        unique, counts = np.unique(values, return_counts=True)
        return unique, counts

    def critical_path_length(self):
        """Edges on the longest dependence chain."""
        return self.max_depth()

    def critical_path(self, weights=None):
        """The longest weighted dependence chain.

        ``weights`` maps task id -> cost (defaults to 1 per task, i.e.
        the depth chain).  Returns ``(total_weight, [task ids])`` from a
        root to a sink.  With measured durations as weights this is the
        execution's inherent lower bound: no scheduler can beat the
        critical path, which quantifies the paper's "insufficient
        parallelism due to dependences" bottleneck.
        """
        if not self.nodes:
            return 0, []
        if weights is None:
            weights = {node: 1 for node in self.nodes}
        in_degree = {node: len(self.predecessors[node])
                     for node in self.nodes}
        best = {node: weights.get(node, 0) for node in self.nodes}
        parent: Dict[int, Optional[int]] = {node: None
                                            for node in self.nodes}
        ready = deque(node for node, degree in in_degree.items()
                      if degree == 0)
        visited = 0
        while ready:
            node = ready.popleft()
            visited += 1
            for successor in self.successors[node]:
                candidate = best[node] + weights.get(successor, 0)
                if candidate > best[successor]:
                    best[successor] = candidate
                    parent[successor] = node
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    ready.append(successor)
        if visited != len(self.nodes):
            raise ValueError("dependence graph contains a cycle")
        sink = max(best, key=lambda node: best[node])
        path = [sink]
        while parent[path[-1]] is not None:
            path.append(parent[path[-1]])
        path.reverse()
        return best[sink], path

    def ancestors(self, task_id, limit=None):
        """All transitive predecessors of a task (optionally bounded)."""
        seen = set()
        frontier = deque(self.predecessors[task_id])
        while frontier:
            node = frontier.popleft()
            if node in seen:
                continue
            seen.add(node)
            if limit is not None and len(seen) >= limit:
                break
            frontier.extend(self.predecessors[node])
        return seen

    def neighborhood(self, task_id, hops=1):
        """Tasks within ``hops`` dependence edges (both directions) —
        used to export a focused subset of the graph."""
        seen = {task_id}
        frontier = {task_id}
        for __ in range(hops):
            next_frontier = set()
            for node in frontier:
                next_frontier.update(self.successors[node])
                next_frontier.update(self.predecessors[node])
            next_frontier -= seen
            seen.update(next_frontier)
            frontier = next_frontier
        return seen


def reconstruct_task_graph(trace):
    """Rebuild the task graph from the trace's memory accesses.

    For every read access the graph gains an edge from each *visible
    last writer* — the most recent earlier write(s), in execution start
    order, that produced the bytes being read.  This is the exact
    derivation the run-time used, so the reconstruction matches the
    executed dependence graph (validated in the test suite).
    """
    graph = TaskGraph()
    accesses = trace.accesses
    count = len(accesses["task_id"])
    for position in range(len(trace.tasks)):
        graph.add_node(int(trace.tasks.columns["task_id"][position]))
    if count == 0 or len(trace.tasks) == 0:
        return graph
    # Order accesses by the executing task's start time, writes of a
    # task before reads of later tasks.  Accesses referencing task ids
    # absent from the task table (truncated windows, synthetic traces)
    # cannot contribute dependence edges and are dropped.
    task_ids = accesses["task_id"]
    all_ids = trace.tasks.columns["task_id"]
    all_starts = trace.tasks.columns["start"]
    id_order = np.argsort(all_ids)
    sorted_ids = all_ids[id_order]
    clipped = np.minimum(np.searchsorted(sorted_ids, task_ids),
                         len(sorted_ids) - 1)
    known = sorted_ids[clipped] == task_ids
    task_ids = task_ids[known]
    addresses = accesses["address"][known]
    sizes = accesses["size"][known]
    is_write = accesses["is_write"][known]
    starts = all_starts[id_order][clipped[known]]
    order = np.lexsort((is_write * -1, starts))
    writes_by_page: Dict[int, List[Tuple[int, int, int, int]]] = \
        defaultdict(list)
    edges = set()
    for index in order:
        task = int(task_ids[index])
        address = int(addresses[index])
        size = int(sizes[index])
        begin, end = address, address + size
        if is_write[index]:
            for page in range(begin // 4096, (end - 1) // 4096 + 1):
                writes_by_page[page].append((task, begin, end,
                                             int(starts[index])))
        else:
            uncovered = [(begin, end)]
            start_time = int(starts[index])
            for page in range(begin // 4096, (end - 1) // 4096 + 1):
                for writer, wbegin, wend, wstart in reversed(
                        writes_by_page.get(page, ())):
                    if not uncovered:
                        break
                    if wstart > start_time or writer == task:
                        continue
                    remaining = []
                    hit = False
                    for lo, hi in uncovered:
                        if wbegin < hi and lo < wend:
                            hit = True
                            if lo < wbegin:
                                remaining.append((lo, wbegin))
                            if wend < hi:
                                remaining.append((wend, hi))
                        else:
                            remaining.append((lo, hi))
                    if hit and (writer, task) not in edges:
                        edges.add((writer, task))
                        graph.add_edge(writer, task)
                    uncovered = remaining
    return graph


def graph_from_program(program):
    """Ground-truth graph straight from a finalized :class:`Program`."""
    graph = TaskGraph()
    for task in program.tasks:
        graph.add_node(task.task_id)
        for dependency in task.dependencies:
            graph.add_edge(dependency.task_id, task.task_id)
    return graph


def to_networkx(graph):
    """Convert to a :mod:`networkx` DiGraph for external analyses."""
    import networkx as nx

    result = nx.DiGraph()
    result.add_nodes_from(graph.nodes)
    for src, targets in graph.successors.items():
        for dst in targets:
            result.add_edge(src, dst)
    return result


_DOT_COLORS = ("lightblue", "lightgreen", "lightyellow", "lightpink",
               "lightgray", "orange", "cyan", "violet")


def export_dot(graph, path=None, task_ids=None, trace=None):
    """Export (a subset of) the task graph in DOT format (Section III-A).

    ``task_ids`` restricts the export; ``trace`` adds task-type names
    and colors.  Returns the DOT text; writes it to ``path`` if given.
    """
    selected = set(graph.nodes if task_ids is None else task_ids)
    lines = ["digraph taskgraph {", "  rankdir=TB;",
             "  node [style=filled];"]
    for node in sorted(selected):
        label = "t{}".format(node)
        color = "white"
        if trace is not None:
            try:
                execution = trace.task_by_id(node)
            except KeyError:
                execution = None
            if execution is not None:
                type_info = trace.task_types[execution.type_id]
                label = "{}\\n{}".format(type_info.name, node)
                color = _DOT_COLORS[execution.type_id % len(_DOT_COLORS)]
        lines.append('  "{}" [label="{}", fillcolor="{}"];'.format(
            node, label, color))
    for src in sorted(selected):
        for dst in graph.successors.get(src, ()):
            if dst in selected:
                lines.append('  "{}" -> "{}";'.format(src, dst))
    lines.append("}")
    text = "\n".join(lines) + "\n"
    if path is not None:
        with open(path, "w") as handle:
            handle.write(text)
    return text
