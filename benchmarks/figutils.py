"""Helpers shared by the per-figure benchmarks."""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name, lines):
    """Write one figure's reproduced series to benchmarks/results/ and
    echo it (visible with ``pytest -s``)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "{}.txt".format(name)
    text = "\n".join(str(line) for line in lines) + "\n"
    path.write_text(text)
    print("\n[{}]\n{}".format(name, text))
    return path


def series(values, fmt="{:.2f}"):
    """Compact one-line rendering of a numeric series."""
    return " ".join(fmt.format(float(value)) for value in values)
