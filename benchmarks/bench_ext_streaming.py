"""Extension — out-of-core trace processing (paper's future work).

The paper's conclusion announces work on "the out-of-core processing of
large traces".  This bench compares the streaming statistics pass with
a full in-memory load and validates the time-window extraction path.

Mapping: docs/paper-mapping.md.
"""

import pytest

from figutils import write_result
from repro.trace_format import (read_trace, split_time_window,
                                streaming_statistics, write_trace)


@pytest.fixture(scope="module")
def trace_file(seidel_opt, tmp_path_factory):
    __, trace = seidel_opt
    path = tmp_path_factory.mktemp("ooc") / "seidel.ost"
    write_trace(trace, str(path))
    return trace, str(path)


def test_streaming_statistics_pass(benchmark, trace_file):
    trace, path = trace_file
    stats = benchmark(streaming_statistics, path)
    assert stats.total_tasks == len(trace.tasks)
    from repro.core import state_time_summary
    summary = state_time_summary(trace)
    for state, cycles in summary.items():
        assert stats.state_cycles[state] == cycles
    write_result("ext_streaming", [
        "Extension: out-of-core streaming statistics",
        "paper (conclusion): 'out-of-core processing of large traces'",
        "streamed {} records in one constant-memory pass".format(
            stats.records),
        stats.describe(),
    ])


def test_full_load_baseline(benchmark, trace_file):
    """The in-memory alternative the streaming pass avoids."""
    __, path = trace_file
    trace = benchmark(read_trace, path)
    assert len(trace.tasks) > 0


def test_window_extraction(benchmark, trace_file):
    """Extract a 10% window of the trace for interactive analysis."""
    trace, path = trace_file
    start = trace.begin
    end = trace.begin + trace.duration // 10
    window = benchmark(split_time_window, path, start, end)
    assert 0 < len(window.tasks) < len(trace.tasks)
    # The window supports normal rendering.
    from repro.render import StateMode, TimelineView, render_timeline
    fb = render_timeline(window, StateMode(),
                         TimelineView.fit(window, 200, 100))
    assert fb.pixels_drawn > 0
