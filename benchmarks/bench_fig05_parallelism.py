"""Fig. 5 — available parallelism as a function of task-graph depth.

Paper (seidel, 2^14 matrix in 2^8 blocks): four phases — (1) >5000
ready tasks at startup (the initialization tasks at depth 0), (2) a
sudden drop to a single task (everything depends on b00), (3) rising
parallelism as the diagonal wave front grows (peak ~2400 near depth
120), (4) decline toward the end of the computation.

Mapping: docs/paper-mapping.md.
"""


from figutils import series, write_result
from repro.core import reconstruct_task_graph


def test_fig05_parallelism_profile(benchmark, seidel_opt):
    __, trace = seidel_opt
    graph = benchmark(reconstruct_task_graph, trace)
    depths, counts = graph.parallelism_profile()

    # Phase 1: the init spike at depth 0.
    assert depths[0] == 0
    init_count = counts[0]
    # Phase 2: the sudden drop to a single task at depth 1.
    assert counts[1] == 1
    # Phase 3: parallelism rises to a wave-front peak...
    body = counts[2:]
    peak = int(body.max())
    peak_depth = int(depths[2:][body.argmax()])
    assert peak > 10
    # ... which, as in the paper, lies strictly inside the depth range.
    assert 1 < peak_depth < depths[-1]
    # Phase 4: decline after the peak.
    assert counts[-1] < peak

    write_result("fig05_parallelism", [
        "Fig. 5: available parallelism vs. depth "
        "(reconstructed task graph: {} nodes, {} edges)".format(
            len(graph.nodes), graph.num_edges),
        "paper: >5000 at depth 0 -> 1 at depth 1 -> peak ~2400 near "
        "depth 120 -> decline (max depth ~230)",
        "measured: {} at depth 0 -> {} at depth 1 -> peak {} at depth "
        "{} -> {} at max depth {}".format(
            init_count, counts[1], peak, peak_depth, counts[-1],
            depths[-1]),
        "profile: " + series(counts, "{:.0f}"),
    ])
