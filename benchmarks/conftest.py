"""Shared fixtures for the per-figure benchmarks.

Each bench regenerates one figure/table of the paper's evaluation:
the traces behind them are simulated once per session here, at the
scale selected by ``REPRO_SCALE`` (default ``default``; use ``small``
for quick runs or ``paper`` for full-size — slow in pure Python).

Every bench writes its reproduced data series (and the paper's values
for comparison) to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import pathlib
import sys

import pytest

from repro import experiments

# Benchmarks record machine-readable timings through tools/bench_json.py
# (the perf trajectory uploaded by CI).
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "tools"))


def pytest_addoption(parser):
    parser.addoption(
        "--self-test", action="store_true", default=False,
        help="Exercise every bench body quickly: pin the workload "
             "scale to 'small' and disable benchmark timing.  This is "
             "the CI smoke path that keeps benchmark code from "
             "rotting.")


def pytest_configure(config):
    if config.getoption("--self-test"):
        # Equivalent to --benchmark-disable: the benchmark fixture
        # calls the target once without timing rounds.
        config.option.benchmark_disable = True


@pytest.fixture(scope="session")
def scale(request):
    if request.config.getoption("--self-test"):
        return "small"
    return os.environ.get("REPRO_SCALE", "default")


@pytest.fixture(scope="session")
def seidel_opt(scale):
    """Optimized seidel run: (SimResult, Trace)."""
    return experiments.seidel_trace(optimized=True, scale=scale, seed=1)


@pytest.fixture(scope="session")
def seidel_nonopt(scale):
    """Non-optimized seidel run: (SimResult, Trace)."""
    return experiments.seidel_trace(optimized=False, scale=scale, seed=1)


@pytest.fixture(scope="session")
def kmeans_baseline(scale):
    """k-means with the conditional-update inner loop (the anomaly)."""
    return experiments.kmeans_trace(scale=scale, block_size=10_000,
                                    seed=2)


@pytest.fixture(scope="session")
def kmeans_fixed(scale):
    """k-means after the paper's branch optimization."""
    return experiments.kmeans_trace(scale=scale, block_size=10_000,
                                    optimize_branches=True, seed=2)
