"""Fig. 7 — seidel timeline in heatmap mode (ten shades of red).

Paper: four phases — dark red long-running tasks at the beginning
(initialization), a gap where the background shows through (the
low-parallelism phase), a long majority-white phase of short tasks, and
background again at the end.

Mapping: docs/paper-mapping.md.
"""

import numpy as np

from figutils import write_result
from repro.core import TaskTypeFilter, task_duration_stats
from repro.render import HeatmapMode, TimelineView, render_timeline


def test_fig07_heatmap(benchmark, seidel_opt):
    __, trace = seidel_opt
    view = TimelineView.fit(trace, 800, 4 * trace.num_cores)
    mode = HeatmapMode(shades=10)
    framebuffer = benchmark(render_timeline, trace, mode, view)

    # The first phase must be darker (higher shade) than the plateau:
    # compare the average red-shade darkness of the first tenth of the
    # image with the middle.
    pixels = framebuffer.pixels.astype(np.int64)
    # Heatmap shades have green == blue < red; select those pixels.
    is_shade = ((pixels[:, :, 1] == pixels[:, :, 2])
                & (pixels[:, :, 0] > pixels[:, :, 1]))
    darkness = np.where(is_shade, 255 - pixels[:, :, 1], 0).astype(float)
    width = framebuffer.width
    early = darkness[:, :width // 10][is_shade[:, :width // 10]].mean()
    middle = darkness[:, width // 3:2 * width // 3][
        is_shade[:, width // 3:2 * width // 3]].mean()
    assert early > middle * 1.5

    init_mean, __s = task_duration_stats(trace,
                                         TaskTypeFilter("seidel_init"))
    block_mean, __s2 = task_duration_stats(trace,
                                           TaskTypeFilter("seidel_block"))
    write_result("fig07_heatmap", [
        "Fig. 7: seidel heatmap (10 shades)",
        "paper: dark red initialization phase, then a majority of "
        "short (white) tasks; background visible in low-parallelism "
        "phases",
        "measured: init mean duration {:.0f} cycles vs compute mean "
        "{:.0f} ({:.1f}x)".format(init_mean, block_mean,
                                  init_mean / block_mean),
        "pixel darkness: first tenth {:.1f} vs middle {:.1f}".format(
            early, middle),
    ])
