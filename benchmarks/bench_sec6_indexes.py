"""Section VI-B-c — index structures.

Paper: per-core per-type arrays sorted by timestamp let any interval's
events be found with a fast binary search; an n-ary min/max search tree
per (counter, core) — default arity 100, <= 5 % memory overhead —
avoids scanning every sample when rendering counters.

Mapping: docs/paper-mapping.md.
"""

import numpy as np
import pytest

from figutils import write_result
from repro.core import MinMaxTree, interval_slice


@pytest.fixture(scope="module")
def big_intervals():
    rng = np.random.default_rng(42)
    gaps = rng.integers(0, 50, size=200_000)
    durations = rng.integers(1, 100, size=200_000)
    starts = np.cumsum(gaps + durations) - durations
    ends = starts + durations
    return starts.astype(np.int64), ends.astype(np.int64)


def test_binary_search_slicing(benchmark, big_intervals):
    starts, ends = big_intervals
    span = int(ends[-1])

    def query():
        return interval_slice(starts, ends, span // 3, span // 3 + 5000)

    selection = benchmark(query)
    expected = [index for index in range(len(starts))
                if starts[index] < span // 3 + 5000
                and ends[index] > span // 3]
    assert list(range(selection.start, selection.stop)) == expected


def test_linear_scan_baseline(benchmark, big_intervals):
    """The naive alternative: scan all events for the interval."""
    starts, ends = big_intervals
    span = int(ends[-1])
    lo, hi = span // 3, span // 3 + 5000

    def scan():
        return np.flatnonzero((starts < hi) & (ends > lo))

    benchmark(scan)


@pytest.fixture(scope="module")
def counter_values():
    rng = np.random.default_rng(7)
    return np.cumsum(rng.normal(size=500_000))


def test_minmax_tree_query(benchmark, counter_values):
    tree = MinMaxTree(counter_values)     # default arity 100
    lo, hi = 123_456, 456_789

    result = benchmark(tree.query, lo, hi)
    expected = (float(counter_values[lo:hi].min()),
                float(counter_values[lo:hi].max()))
    assert result == pytest.approx(expected)
    assert tree.overhead_fraction() <= 0.05
    write_result("sec6_indexes", [
        "Section VI-B-c: n-ary min/max tree, {} samples".format(
            len(counter_values)),
        "arity {} -> {} levels, overhead {:.2%} of the sample data "
        "(paper: <= 5%)".format(tree.arity, tree.levels,
                                tree.overhead_fraction()),
    ])


def test_minmax_numpy_scan_baseline(benchmark, counter_values):
    lo, hi = 123_456, 456_789

    def scan():
        window = counter_values[lo:hi]
        return float(window.min()), float(window.max())

    benchmark(scan)


@pytest.mark.parametrize("arity", [2, 10, 100, 1000])
def test_tree_arity_ablation(benchmark, counter_values, arity):
    """DESIGN.md ablation: arity trades query speed for memory — the
    paper picked 100 to bound memory at 5 %."""
    tree = MinMaxTree(counter_values[:100_000], arity=arity)
    benchmark(tree.query, 5_000, 95_000)
    assert tree.query(5_000, 95_000)[0] == pytest.approx(
        float(counter_values[5_000:95_000].min()))
