"""Fig. 16 — distribution of the main computation tasks' duration in
k-means.

Paper: although the computation tasks have similar workloads, the
duration histogram shows several distinct peaks (between 6.5 and 12.5
Mcycles), and long/short tasks are not tied to particular cores.

Mapping: docs/paper-mapping.md.
"""

import numpy as np
import pytest

from figutils import series, write_result
from repro.core import TaskTypeFilter, task_duration_histogram


def count_peaks(fractions):
    """Local maxima above 40 % of the global peak."""
    peaks = 0
    threshold = fractions.max() * 0.4
    for index in range(len(fractions)):
        left = fractions[index - 1] if index > 0 else 0
        right = fractions[index + 1] if index + 1 < len(fractions) else 0
        if fractions[index] >= threshold \
                and fractions[index] >= left and fractions[index] > right:
            peaks += 1
    return peaks


def test_fig16_duration_histogram(benchmark, kmeans_baseline, scale):
    __, trace = kmeans_baseline
    compute = TaskTypeFilter("kmeans_distance")
    edges, fractions = benchmark(task_duration_histogram, trace, 30,
                                 compute)

    assert fractions.sum() == pytest.approx(1.0)
    # Multi-modal: at least two separated peaks.
    assert count_peaks(fractions) >= 2

    # No relationship between duration and topology: every core runs
    # both long and short tasks (Fig. 17's observation).  The property
    # needs several tasks per core, so it is only asserted at
    # realistic problem sizes.
    columns = trace.tasks.columns
    mask = compute.mask(trace)
    durations = (columns["end"] - columns["start"])[mask]
    cores = columns["core"][mask]
    median = np.median(durations)
    cores_with_both = sum(
        1 for core in np.unique(cores)
        if (durations[cores == core] > median).any()
        and (durations[cores == core] <= median).any())
    assert cores_with_both > 0
    if scale != "small":
        assert cores_with_both > 0.8 * len(np.unique(cores))

    write_result("fig16_histogram", [
        "Fig. 16: duration histogram of k-means computation tasks",
        "paper: several distinct peaks between 6.5M and 12.5M cycles",
        "measured: {} peaks between {:.1f}M and {:.1f}M cycles".format(
            count_peaks(fractions), edges[0] / 1e6, edges[-1] / 1e6),
        "fractions: " + series(fractions, "{:.3f}"),
        "cores executing both long and short tasks: {}/{}".format(
            cores_with_both, len(np.unique(cores))),
    ])
