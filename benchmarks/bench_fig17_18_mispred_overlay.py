"""Fig. 17/18 — heatmap over several iterations with the branch
misprediction rate overlaid.

Paper: Fig. 17 shows long and short tasks mixed on every CPU across
iterations; Fig. 18 zooms into a few CPUs and overlays the discrete
derivative of the misprediction counter (constant per task, as counters
are sampled immediately before and after each execution), instantly
revealing that darker (longer) tasks have higher misprediction rates.

Mapping: docs/paper-mapping.md.
"""

import numpy as np

from figutils import write_result
from repro.core import TaskTypeFilter, counter_rate_per_task
from repro.render import (HeatmapMode, TimelineView,
                          render_counter_rate, render_timeline)


def test_fig17_18_heatmap_with_mispred_overlay(benchmark,
                                               kmeans_baseline):
    __, trace = kmeans_baseline
    compute = TaskTypeFilter("kmeans_distance")

    # Fig. 17: heatmap across iterations.
    view = TimelineView.fit(trace, 800, 4 * trace.num_cores)
    framebuffer = render_timeline(trace,
                                  HeatmapMode(task_filter=compute), view)
    assert framebuffer.rect_calls > 0

    # Fig. 18: zoom into five CPUs and overlay the misprediction rate.
    zoom = view.zoom(8.0)

    def render_zoom_with_overlay():
        fb = render_timeline(trace, HeatmapMode(task_filter=compute),
                             zoom)
        for core in range(min(5, trace.num_cores)):
            render_counter_rate(trace, "branch_mispredictions", zoom, fb,
                                core=core, top=4 * core, height=4)
        return fb

    framebuffer = benchmark(render_zoom_with_overlay)
    assert framebuffer.pixels_drawn > 0

    # The correlation the overlay reveals: per task, duration rank and
    # misprediction-rate rank agree (Spearman-style check).
    columns, rates = counter_rate_per_task(trace,
                                           "branch_mispredictions",
                                           compute)
    durations = (columns["end"] - columns["start"]).astype(float)
    dark_third = durations >= np.quantile(durations, 2 / 3)
    light_third = durations <= np.quantile(durations, 1 / 3)
    assert rates[dark_third].mean() > rates[light_third].mean() * 1.3

    write_result("fig17_18_mispred_overlay", [
        "Fig. 17/18: heatmap + branch misprediction rate overlay",
        "paper: darker (longer) tasks show higher misprediction rates; "
        "rate axis [0; 0.009215] mispredictions/cycle",
        "measured: mean rate of slowest third {:.2f}/kcycle vs fastest "
        "third {:.2f}/kcycle".format(rates[dark_third].mean(),
                                     rates[light_third].mean()),
        "measured rate range: [{:.4f}; {:.4f}] per cycle".format(
            rates.min() / 1000, rates.max() / 1000),
    ])
