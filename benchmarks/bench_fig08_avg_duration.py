"""Fig. 8 — average task duration derived counter.

Paper: a pronounced peak coinciding with the initialization phase,
followed by a long plateau; the value never drops to zero while tasks
execute.

Mapping: docs/paper-mapping.md.
"""


from figutils import series, write_result
from repro.core import average_task_duration_series


def test_fig08_average_task_duration(benchmark, seidel_opt):
    __, trace = seidel_opt
    edges, averages = benchmark(average_task_duration_series, trace, 200)

    assert len(averages) == 200
    peak_at = int(averages.argmax())
    # The peak sits in the initialization phase (first fifth).
    assert peak_at < 40
    plateau = averages[80:160]
    assert (plateau > 0).all()             # never drops to zero
    assert averages.max() > plateau.mean() * 2

    coarse = averages.reshape(20, 10).mean(axis=1)
    write_result("fig08_avg_duration", [
        "Fig. 8: average task duration (200 intervals)",
        "paper: peak ~50 Mcycles during initialization, plateau "
        "~10 Mcycles, never zero",
        "measured: peak {:.0f} cycles at {:.0%}, plateau mean {:.0f} "
        "cycles (ratio {:.1f}x)".format(
            averages.max(), peak_at / 200, plateau.mean(),
            averages.max() / plateau.mean()),
        "series (20 buckets): " + series(coarse, "{:.0f}"),
    ])
