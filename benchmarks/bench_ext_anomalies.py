"""Extension — semi-automatic anomaly detection (paper's future work).

The paper's conclusion announces "semi-automatic statistical methods to
quickly focus the search for interesting anomalies"; this bench runs
the implemented detectors over the seidel traces and validates that
they find exactly the anomalies the paper's manual analyses found.

Mapping: docs/paper-mapping.md.
"""


from figutils import write_result
from repro.core import TaskTypeFilter, correlate_counters, scan


def test_anomaly_scan(benchmark, seidel_nonopt, scale):
    __, trace = seidel_nonopt
    findings = benchmark(scan, trace, 100)

    kinds = {finding.kind for finding in findings}
    assert "idle-phase" in kinds
    assert "poor-locality" in kinds
    if scale != "small":
        # The non-optimized seidel run exhibits all three anomaly
        # families the paper debugs by hand; the slow first-touch init
        # tasks only stand out as outliers at realistic problem sizes.
        assert "duration-outlier" in kinds
        init = [finding for finding in findings
                if finding.kind == "duration-outlier"]
        assert any(finding.task_type == "seidel_init"
                   for finding in init)

    write_result("ext_anomaly_scan", [
        "Extension: semi-automatic anomaly scan (non-optimized seidel)",
        "paper (conclusion): 'semi-automatic statistical methods to "
        "quickly focus the search for interesting anomalies'",
        "findings: {} total, kinds: {}".format(
            len(findings), ", ".join(sorted(kinds))),
    ] + ["  {!r}".format(finding) for finding in findings[:8]])


def test_counter_correlation_ranking(benchmark, kmeans_baseline):
    __, trace = kmeans_baseline
    ranking = benchmark(correlate_counters, trace,
                        TaskTypeFilter("kmeans_distance"))
    assert ranking
    assert ranking[0].counter == "branch_mispredictions"
    write_result("ext_counter_ranking", [
        "Extension: automated counter-correlation ranking (k-means)",
        "expected: branch_mispredictions ranked first (Section V found "
        "it manually)",
    ] + ["  {:28s} R^2 = {:.3f}".format(entry.counter, entry.r_squared)
         for entry in ranking])
