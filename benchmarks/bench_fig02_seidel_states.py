"""Fig. 2 — seidel timeline in state mode.

Paper: task execution (dark blue) dominates, with two distinct light
blue vertical bands of idling workers: one in the first quarter of the
execution and one at the end.

Mapping: docs/paper-mapping.md.
"""

import numpy as np

from figutils import write_result
from repro.core import WorkerState, state_count_series
from repro.render import StateMode, TimelineView, render_timeline, \
    state_color


def test_fig02_state_timeline(benchmark, seidel_opt):
    __, trace = seidel_opt
    view = TimelineView.fit(trace, 800, 4 * trace.num_cores)
    framebuffer = benchmark(render_timeline, trace, StateMode(), view)

    colors = framebuffer.unique_colors()
    assert state_color(WorkerState.RUNNING) in colors
    assert state_color(WorkerState.IDLE) in colors

    # Verify the two idle bands: idle density in the first quarter and
    # the final tenth clearly exceeds the middle of the execution.
    edges, idle = state_count_series(trace, WorkerState.IDLE, 40)
    first_quarter = idle[:10].max()
    middle = idle[15:30].mean()
    tail = idle[-4:].max()
    assert first_quarter > middle * 2
    assert tail > middle * 2

    running = np.count_nonzero(
        (framebuffer.pixels
         == state_color(WorkerState.RUNNING)).all(axis=2))
    idle_pixels = np.count_nonzero(
        (framebuffer.pixels == state_color(WorkerState.IDLE)).all(axis=2))
    write_result("fig02_seidel_states", [
        "Fig. 2: seidel state timeline ({} cores)".format(trace.num_cores),
        "paper: dark blue (task execution) dominates; two light-blue "
        "idle bands (first quarter, end)",
        "measured: running pixels = {}, idle pixels = {} "
        "(ratio {:.2f})".format(running, idle_pixels,
                                running / max(idle_pixels, 1)),
        "idle-band check: first-quarter peak {:.1f}, middle mean {:.1f}, "
        "tail peak {:.1f} workers".format(first_quarter, middle, tail),
        "render: {} rectangle fills for {} state intervals".format(
            framebuffer.rect_calls, len(trace.states)),
    ])
