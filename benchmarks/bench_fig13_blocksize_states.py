"""Fig. 13 — k-means state timelines across block sizes.

Paper: with 1.28M-point blocks (m=32 on 64 cores) most workers idle
(light blue dominates); at 640K (m=64) an alternating pattern of
execution and idle phases appears as unequal task durations leave some
workers waiting at each iteration's reduction; small blocks make the
pattern imperceptible until, below 5K points, task-management overhead
causes idle phases at termination.

Mapping: docs/paper-mapping.md.
"""

import pytest

from figutils import write_result
from repro import experiments
from repro.core import WorkerState
from repro.render import StateMode, TimelineView, render_timeline


def idle_fraction(trace, result):
    total = result.makespan * trace.num_cores
    return result.state_cycles[int(WorkerState.IDLE)] / total


@pytest.fixture(scope="module")
def runs(scale):
    machine = experiments.kmeans_machine(scale)
    points = experiments.preset(scale).kmeans_points
    cores = machine.num_cores
    # Three regimes: m = cores/2 (starved), m = cores (alternating),
    # m very large (overhead-bound tail).
    cases = {}
    for label, m in (("starved", cores // 2), ("alternating", cores),
                     ("balanced", cores * 16), ("tiny", cores * 128)):
        result, trace = experiments.kmeans_trace(
            scale=scale, machine=machine,
            block_size=max(points // m, 1), seed=3,
            collect_accesses=False)
        cases[label] = (m, result, trace)
    return cases


def test_fig13_blocksize_state_patterns(benchmark, runs):
    __, __r, render_trace = runs["alternating"]
    view = TimelineView.fit(render_trace, 640,
                            4 * render_trace.num_cores)
    framebuffer = benchmark(render_timeline, render_trace, StateMode(),
                            view)
    assert framebuffer.rect_calls > 0

    fractions = {label: idle_fraction(trace, result)
                 for label, (m, result, trace) in runs.items()}
    # Fig. 13a: with fewer blocks than cores, workers mostly idle.
    assert fractions["starved"] > 0.4
    # The balanced middle keeps workers busy...
    assert fractions["balanced"] < fractions["starved"]
    # ...and the alternating regime sits in between.
    assert fractions["balanced"] <= fractions["alternating"] + 0.05
    # Fig. 13j: tiny blocks bring idle time back (management overhead).
    assert fractions["tiny"] > fractions["balanced"]

    lines = ["Fig. 13: k-means idle fraction by block-size regime",
             "paper: m=32 mostly idle; m=64 alternating idle bands; "
             "mid sizes imperceptible; <5K points idle at termination",
             "regime       m          idle fraction"]
    for label in ("starved", "alternating", "balanced", "tiny"):
        m, result, trace = runs[label]
        lines.append("{:12s} {:6d}     {:.1%}".format(label, m,
                                                      fractions[label]))
    write_result("fig13_blocksize_states", lines)
