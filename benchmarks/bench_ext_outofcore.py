"""Extension — seekable chunk index and parallel out-of-core analysis.

Mapping: docs/paper-mapping.md (extensions beyond the paper).

The paper's conclusion announces work on "the out-of-core processing
of large traces".  This bench quantifies the two halves of that engine
on a multi-million-event synthetic trace:

* window extraction through the chunk index vs. the full-file scan —
  the indexed path must touch a small fraction of the file's bytes;
* the sharded map-reduce statistics pass vs. the serial streaming
  pass — identical results, bounded memory, parallel throughput;
* full-trace statistics on the columnar store (vectorized array
  passes) vs. the object-model path (iterating per-event dataclasses)
  — bit-identical results, required to be at least 5x faster.
"""

import os
import time

import numpy as np
import pytest

from figutils import write_result
from repro.analysis import parallel_streaming_statistics
from repro.core import reference, statistics
from repro.trace_format import (ScanStats, read_chunk_index, read_trace,
                                split_time_window, streaming_statistics,
                                write_synthetic_trace)

_EVENTS = {"small": 100_000, "default": 1_000_000, "paper": 4_000_000}


@pytest.fixture(scope="module")
def big_trace(scale, tmp_path_factory):
    events = _EVENTS.get(scale, _EVENTS["default"])
    path = tmp_path_factory.mktemp("ooc") / "big.ost"
    records = write_synthetic_trace(str(path), events=events)
    bounds = streaming_statistics(str(path))
    return str(path), records, bounds


def test_indexed_window_extraction(benchmark, big_trace):
    path, records, bounds = big_trace
    span = bounds.end - bounds.begin
    start = bounds.begin + span // 2
    end = start + span // 100

    window = benchmark(split_time_window, path, start, end)
    assert len(window.tasks) > 0

    # Byte accounting in a single fresh pass — the benchmark loop above
    # would accumulate stats over every timing round.
    stats = ScanStats()
    split_time_window(path, start, end, stats=stats)
    assert stats.used_index
    file_size = os.path.getsize(path)
    index = read_chunk_index(path)
    write_result("ext_outofcore_window", [
        "Extension: indexed window extraction (paper conclusion:",
        "'out-of-core processing of large traces')",
        "trace: {} records, {} bytes, {} chunks".format(
            records, file_size, index.num_chunks),
        "1% window read {} of {} bytes ({:.1%}), skipped {} chunks"
        .format(stats.bytes_read, file_size,
                stats.bytes_read / file_size, stats.chunks_skipped),
    ])


def test_full_scan_window_baseline(benchmark, big_trace):
    """The same extraction without the index: every byte is read."""
    path, __, bounds = big_trace
    span = bounds.end - bounds.begin
    start = bounds.begin + span // 2
    window = benchmark.pedantic(split_time_window, rounds=3, iterations=1,
                                args=(path, start, start + span // 100),
                                kwargs={"use_index": False})
    assert len(window.tasks) > 0


def test_parallel_statistics(benchmark, big_trace):
    path, __, bounds = big_trace
    stats = benchmark.pedantic(parallel_streaming_statistics, rounds=3,
                               iterations=1, args=(path,),
                               kwargs={"workers": 2})
    assert stats == bounds        # bit-identical to the serial pass
    write_result("ext_outofcore_parallel", [
        "Extension: sharded map-reduce statistics",
        "parallel result identical to serial streaming pass: True",
        stats.describe().splitlines()[0],
    ])


def test_serial_statistics_baseline(benchmark, big_trace):
    path, __, bounds = big_trace
    stats = benchmark.pedantic(streaming_statistics, rounds=3,
                               iterations=1, args=(path,))
    assert stats == bounds


def _object_model_statistics(trace):
    """Full-trace statistics via the dataclass-iteration API."""
    return (reference.state_time_summary(trace),
            reference.average_parallelism(trace),
            reference.task_duration_histogram(trace, bins=20))


def _columnar_statistics(trace):
    """The same statistics as vectorized array passes."""
    return (statistics.state_time_summary(trace),
            statistics.average_parallelism(trace),
            statistics.task_duration_histogram(trace, bins=20))


def test_columnar_vs_object_statistics(big_trace):
    """Tentpole criterion: full-trace statistics on the columnar store
    must be at least 5x faster than the object-model path, with
    bit-identical results.  (Asserted loosely — the measured ratio is
    usually far higher; see the written result.)"""
    path, __, __bounds = big_trace
    columnar = read_trace(path, columnar=True)
    trace = columnar.to_objects()

    t0 = time.perf_counter()
    object_results = _object_model_statistics(trace)
    object_seconds = time.perf_counter() - t0

    columnar_seconds = min(
        _timed(_columnar_statistics, columnar)[0] for __ in range(5))
    columnar_results = _columnar_statistics(columnar)

    assert object_results[0] == columnar_results[0]
    assert object_results[1] == columnar_results[1]
    assert np.array_equal(object_results[2][0], columnar_results[2][0])
    assert np.array_equal(object_results[2][1], columnar_results[2][1])

    speedup = object_seconds / columnar_seconds
    write_result("ext_columnar_statistics", [
        "Extension: columnar store (one structured array per core and",
        "per record kind) vs. the object-model dataclass iteration,",
        "full-trace statistics (state summary, parallelism, histogram)",
        "trace: {} states, {} tasks".format(len(trace.states),
                                            len(trace.tasks)),
        "object model: {:.3f} s".format(object_seconds),
        "columnar:     {:.4f} s".format(columnar_seconds),
        "speedup: {:.0f}x (required: >= 5x), results bit-identical"
        .format(speedup),
    ])
    assert speedup >= 5.0


def _timed(function, *args):
    t0 = time.perf_counter()
    result = function(*args)
    return time.perf_counter() - t0, result
