"""Extension — seekable chunk index and parallel out-of-core analysis.

Mapping: docs/paper-mapping.md (extensions beyond the paper).

The paper's conclusion announces work on "the out-of-core processing
of large traces".  This bench quantifies the two halves of that engine
on a multi-million-event synthetic trace:

* window extraction through the chunk index vs. the full-file scan —
  the indexed path must touch a small fraction of the file's bytes;
* the sharded map-reduce statistics pass vs. the serial streaming
  pass — identical results, bounded memory, parallel throughput.
"""

import os

import pytest

from figutils import write_result
from repro.analysis import parallel_streaming_statistics
from repro.trace_format import (ScanStats, read_chunk_index,
                                split_time_window, streaming_statistics,
                                write_synthetic_trace)

_EVENTS = {"small": 100_000, "default": 1_000_000, "paper": 4_000_000}


@pytest.fixture(scope="module")
def big_trace(scale, tmp_path_factory):
    events = _EVENTS.get(scale, _EVENTS["default"])
    path = tmp_path_factory.mktemp("ooc") / "big.ost"
    records = write_synthetic_trace(str(path), events=events)
    bounds = streaming_statistics(str(path))
    return str(path), records, bounds


def test_indexed_window_extraction(benchmark, big_trace):
    path, records, bounds = big_trace
    span = bounds.end - bounds.begin
    start = bounds.begin + span // 2
    end = start + span // 100

    window = benchmark(split_time_window, path, start, end)
    assert len(window.tasks) > 0

    # Byte accounting in a single fresh pass — the benchmark loop above
    # would accumulate stats over every timing round.
    stats = ScanStats()
    split_time_window(path, start, end, stats=stats)
    assert stats.used_index
    file_size = os.path.getsize(path)
    index = read_chunk_index(path)
    write_result("ext_outofcore_window", [
        "Extension: indexed window extraction (paper conclusion:",
        "'out-of-core processing of large traces')",
        "trace: {} records, {} bytes, {} chunks".format(
            records, file_size, index.num_chunks),
        "1% window read {} of {} bytes ({:.1%}), skipped {} chunks"
        .format(stats.bytes_read, file_size,
                stats.bytes_read / file_size, stats.chunks_skipped),
    ])


def test_full_scan_window_baseline(benchmark, big_trace):
    """The same extraction without the index: every byte is read."""
    path, __, bounds = big_trace
    span = bounds.end - bounds.begin
    start = bounds.begin + span // 2
    window = benchmark.pedantic(split_time_window, rounds=3, iterations=1,
                                args=(path, start, start + span // 100),
                                kwargs={"use_index": False})
    assert len(window.tasks) > 0


def test_parallel_statistics(benchmark, big_trace):
    path, __, bounds = big_trace
    stats = benchmark.pedantic(parallel_streaming_statistics, rounds=3,
                               iterations=1, args=(path,),
                               kwargs={"workers": 2})
    assert stats == bounds        # bit-identical to the serial pass
    write_result("ext_outofcore_parallel", [
        "Extension: sharded map-reduce statistics",
        "parallel result identical to serial streaming pass: True",
        stats.describe().splitlines()[0],
    ])


def test_serial_statistics_baseline(benchmark, big_trace):
    path, __, bounds = big_trace
    stats = benchmark.pedantic(streaming_statistics, rounds=3,
                               iterations=1, args=(path,))
    assert stats == bounds
