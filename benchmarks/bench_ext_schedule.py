"""Extension — schedule-quality analyses over the paper's workloads.

Quantifies what Section III-A argues qualitatively: the dependence
structure bounds achievable parallelism.  The duration-weighted
critical path of seidel's wave front gives the minimum possible
makespan; the bench reports how close the simulated work-stealing
schedule came, plus the per-type time profile behind Fig. 9.

Mapping: docs/paper-mapping.md.
"""

import numpy as np

from figutils import write_result
from repro.core import (critical_path_report, describe_profile,
                        reconstruct_task_graph, scheduling_delays,
                        task_type_profile)


def test_critical_path_analysis(benchmark, seidel_opt):
    __, trace = seidel_opt
    graph = reconstruct_task_graph(trace)
    report = benchmark(critical_path_report, trace, graph)

    assert report.length_cycles <= report.makespan
    assert report.max_speedup > 1.0
    assert 0 < report.schedule_efficiency <= 1.0

    delays = scheduling_delays(trace, graph)
    values = np.asarray(list(delays.values()), dtype=float)
    write_result("ext_schedule", [
        "Extension: schedule-quality analysis (optimized seidel)",
        report.describe(),
        "scheduling delays: median {:.0f}, p95 {:.0f}, max {:.0f} "
        "cycles".format(np.median(values), np.percentile(values, 95),
                        values.max()),
        "",
        describe_profile(task_type_profile(trace)),
    ])


def test_type_profile(benchmark, seidel_opt):
    __, trace = seidel_opt
    entries = benchmark(task_type_profile, trace)
    shares = {entry.type_name: entry.share_of_execution
              for entry in entries}
    # Compute tasks dominate; init is a visible minority (Fig. 9).
    assert shares["seidel_block"] > 0.5
    assert 0.01 < shares["seidel_init"] < 0.5
