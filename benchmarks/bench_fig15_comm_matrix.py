"""Fig. 15 — communication incidence matrix for seidel.

Paper: the non-optimized execution produces deep red across the whole
matrix (every node exchanges data with every node in similar
proportions); the optimized execution shows a very sharp diagonal with
no discernible red outside it — near-optimal locality.

Mapping: docs/paper-mapping.md.
"""

import numpy as np

from figutils import write_result
from repro.core import communication_matrix
from repro.render import matrix_to_text, render_matrix


def test_fig15_communication_matrix(benchmark, seidel_opt,
                                    seidel_nonopt):
    __, opt_trace = seidel_opt
    __, non_trace = seidel_nonopt

    opt_matrix = benchmark(communication_matrix, opt_trace)
    non_matrix = communication_matrix(non_trace)

    nodes = opt_trace.topology.num_nodes
    # Optimized: sharp diagonal.
    assert np.trace(opt_matrix) > 0.8
    # Non-optimized: traffic spread over all node pairs in similar
    # proportions — every row has off-diagonal traffic.
    off_diag = non_matrix - np.diag(np.diag(non_matrix))
    assert np.trace(non_matrix) < 0.5
    assert (off_diag.sum(axis=1) > 0).all()

    # The matrices render as red-shaded grids.
    fb = render_matrix(opt_matrix)
    assert fb.rect_calls == nodes * nodes

    write_result("fig15_comm_matrix", [
        "Fig. 15: communication incidence matrix (fraction of bytes)",
        "paper: uniform deep red (non-optimized) vs sharp diagonal "
        "(optimized)",
        "measured diagonal share: optimized {:.1%}, non-optimized "
        "{:.1%}".format(np.trace(opt_matrix), np.trace(non_matrix)),
        "", "non-optimized:", matrix_to_text(non_matrix),
        "", "optimized:", matrix_to_text(opt_matrix),
    ])
