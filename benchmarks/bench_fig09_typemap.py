"""Fig. 9 — seidel timeline in task type mode (typemap).

Paper: the first phase is dominated by initialization tasks (pink in
the paper's rendering) while the plateau consists of main computation
tasks (ocher) — proving the long-running tasks are the initialization.

Mapping: docs/paper-mapping.md.
"""


from figutils import write_result
from repro.core import IntervalFilter, TaskTypeFilter
from repro.render import TimelineView, TypeMode, render_timeline


def test_fig09_typemap(benchmark, seidel_opt):
    __, trace = seidel_opt
    view = TimelineView.fit(trace, 800, 4 * trace.num_cores)
    framebuffer = benchmark(render_timeline, trace, TypeMode(), view)
    assert framebuffer.rect_calls > 0

    # Quantify the visual claim: among tasks overlapping the first
    # twentieth of the execution, init dominates; in the middle, the
    # computation type dominates.
    span = trace.duration
    early = IntervalFilter(trace.begin, trace.begin + span // 20)
    middle = IntervalFilter(trace.begin + 2 * span // 5,
                            trace.begin + 3 * span // 5)
    init = TaskTypeFilter("seidel_init")
    early_init = (early & init).count(trace)
    early_total = early.count(trace)
    middle_init = (middle & init).count(trace)
    middle_total = middle.count(trace)
    assert early_init / early_total > 0.5
    assert middle_init / max(middle_total, 1) < 0.05

    write_result("fig09_typemap", [
        "Fig. 9: seidel typemap",
        "paper: first phase dominated by initialization tasks, plateau "
        "by computation tasks",
        "measured: init share {:.0%} in first 5% of execution, {:.0%} "
        "in the middle".format(early_init / early_total,
                               middle_init / max(middle_total, 1)),
    ])
