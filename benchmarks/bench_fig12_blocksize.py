"""Fig. 12 — k-means execution time as a function of block size.

Paper (40.96M points, 10 dims, 11 clusters, 64 cores): execution time
is high for very large blocks (too few tasks: 14.85s at 1.28M points
per block) and for very small blocks (task management overhead: 7.16s
at 2.5K), with a minimum of 6.22s at 10K points per block.

The sweep keeps the paper's block *counts* (m = points/block_size from
32 to 16384) on a scaled-down point set, and reports execution-time
ratios relative to the sweep minimum next to the paper's ratios.

Mapping: docs/paper-mapping.md.
"""


import pytest

from figutils import write_result
from repro import experiments

PAPER_SECONDS = {32: 14.85, 64: 8.20, 128: 8.06, 256: 7.89, 512: 7.49,
                 1024: 6.39, 2048: 6.25, 4096: 6.22, 8192: 6.33,
                 16384: 7.16}


@pytest.fixture(scope="module")
def sweep(scale):
    machine = experiments.kmeans_machine(scale)
    points = experiments.preset(scale).kmeans_points
    iterations = experiments.preset(scale).kmeans_iterations
    block_counts = sorted(PAPER_SECONDS)
    if scale == "small":
        block_counts = block_counts[:7]   # cap the task count
    makespans = {}
    for m in block_counts:
        makespans[m] = experiments.kmeans_makespan(
            max(points // m, 1), machine=machine, iterations=iterations,
            num_points=points, seed=1)
    return points, makespans


def test_fig12_blocksize_sweep(benchmark, sweep, scale):
    points, makespans = sweep
    # Benchmark one representative mid-size configuration.
    benchmark(experiments.kmeans_makespan, points // 512,
              iterations=2, num_points=points, seed=1)

    minimum = min(makespans.values())
    ratios = {m: makespan / minimum for m, makespan in makespans.items()}
    block_counts = sorted(makespans)
    best = min(ratios, key=ratios.get)

    if scale == "small":
        # The U-shape flattens on tiny inputs; only its direction
        # survives: the extremes never beat an interior block count.
        assert ratios[block_counts[0]] > 1.0
        assert best > block_counts[0]
    else:
        # Shape assertions: U-shape with both extremes penalized.
        assert ratios[block_counts[0]] > 1.5      # too few blocks
        assert ratios[block_counts[-1]] > 1.05    # overhead-bound
        assert block_counts[0] < best < block_counts[-1]

    paper_min = min(PAPER_SECONDS.values())
    lines = [
        "Fig. 12: k-means execution time vs block size "
        "({} points, {} cores)".format(
            points, experiments.kmeans_machine(scale).num_cores),
        "m=blocks  block_size  cycles        ratio   paper_ratio",
    ]
    for m in block_counts:
        lines.append("{:8d}  {:10d}  {:12d}  {:5.2f}   {:5.2f}".format(
            m, points // m, makespans[m], ratios[m],
            PAPER_SECONDS[m] / paper_min))
    lines.append("paper: min 6.22s at block size 10K (m=4096); "
                 "measured min at m={}".format(best))
    write_result("fig12_blocksize", lines)
