"""Section VI-A — trace format: binary size, compression and load speed.

Paper: traces are binary to reduce size and parsing delay, and may be
compressed with gzip/bzip2/xz; Aftermath opens compressed traces
directly.  Records interleave freely as long as per-core timestamps
are ordered.

Mapping: docs/paper-mapping.md.
"""

import os

import pytest

from figutils import write_result
from repro.trace_format import read_trace, write_trace


@pytest.fixture(scope="module")
def trace_files(seidel_opt, tmp_path_factory):
    __, trace = seidel_opt
    root = tmp_path_factory.mktemp("traces")
    paths = {}
    for suffix in ("", ".gz", ".bz2", ".xz"):
        path = root / ("seidel.ost" + suffix)
        write_trace(trace, str(path))
        paths[suffix or "raw"] = path
    return trace, paths


def test_trace_write(benchmark, seidel_opt, tmp_path):
    __, trace = seidel_opt
    target = tmp_path / "out.ost"
    records = benchmark(write_trace, trace, str(target))
    assert records > 0


def test_trace_load_uncompressed(benchmark, trace_files):
    trace, paths = trace_files
    loaded = benchmark(read_trace, str(paths["raw"]))
    assert len(loaded.tasks) == len(trace.tasks)


def test_trace_load_gzip(benchmark, trace_files):
    """Opening a compressed trace directly (Section VI-A)."""
    trace, paths = trace_files
    loaded = benchmark(read_trace, str(paths[".gz"]))
    assert len(loaded.tasks) == len(trace.tasks)


def test_compression_ratio_table(benchmark, trace_files):
    trace, paths = trace_files
    benchmark(os.path.getsize, str(paths["raw"]))
    raw_size = os.path.getsize(paths["raw"])
    lines = ["Section VI-A: trace file sizes "
             "({} tasks, {} states, {} accesses)".format(
                 len(trace.tasks), len(trace.states),
                 len(trace.accesses["task_id"])),
             "codec   bytes        ratio"]
    for label, path in paths.items():
        size = os.path.getsize(path)
        lines.append("{:6s}  {:10d}   {:5.2f}x".format(label, size,
                                                       raw_size / size))
        if label != "raw":
            assert size < raw_size
    write_result("sec6_trace_io", lines)
