"""Fig. 14 — locality of memory accesses: NUMA read/write maps and the
NUMA heatmap, non-optimized vs optimized run-time.

Paper: the non-optimized execution shows no color pattern (tasks read
from all remote nodes); the optimized one shows per-node color bands
(adjacent cores read from a single node).  The NUMA heatmap shades the
same traces blue (local) vs pink (remote).  Execution times: 7.91
Gcycles non-optimized vs 2.59 Gcycles optimized (3x speedup).

Mapping: docs/paper-mapping.md.
"""

import numpy as np

from figutils import write_result
from repro.core import average_remote_fraction, task_predominant_nodes
from repro.render import (NumaHeatmapMode, NumaMode, TimelineView,
                          render_timeline)


def band_purity(trace, kind):
    """How uniform the per-node color bands are: the mean share of each
    core's tasks whose predominant source is that core's own majority
    node.  ~1.0 = the paper's clean bands, ~1/nodes = speckle."""
    nodes = task_predominant_nodes(trace, kind)
    purity = []
    for core in range(trace.num_cores):
        lane = nodes[trace.tasks.core_slice(core)]
        lane = lane[lane >= 0]
        if len(lane) == 0:
            continue
        values, counts = np.unique(lane, return_counts=True)
        purity.append(counts.max() / counts.sum())
    return float(np.mean(purity))


def test_fig14_numa_maps(benchmark, seidel_opt, seidel_nonopt):
    opt_result, opt_trace = seidel_opt
    non_result, non_trace = seidel_nonopt

    view = TimelineView.fit(opt_trace, 640, 4 * opt_trace.num_cores)
    framebuffer = benchmark(render_timeline, opt_trace, NumaMode("read"),
                            view)
    assert framebuffer.rect_calls > 0
    for trace in (opt_trace, non_trace):
        for mode in (NumaMode("write"), NumaHeatmapMode()):
            fb = render_timeline(trace, mode,
                                 TimelineView.fit(trace, 320, 128))
            assert fb.pixels_drawn > 0

    # Banding: optimized lanes are near-uniform, non-optimized speckled.
    opt_purity = band_purity(opt_trace, "read")
    non_purity = band_purity(non_trace, "read")
    assert opt_purity > 0.8
    assert non_purity < opt_purity - 0.2

    # Remote-access fraction drives the NUMA heatmap's blue vs pink.
    opt_remote = average_remote_fraction(opt_trace)
    non_remote = average_remote_fraction(non_trace)
    assert opt_remote < 0.25
    assert non_remote > 0.5

    speedup = non_result.makespan / opt_result.makespan
    assert speedup > 1.5

    write_result("fig14_numa_maps", [
        "Fig. 14: NUMA locality, non-optimized vs optimized run-time",
        "paper: no color pattern vs per-node bands; heatmap pink vs "
        "blue; 7.91 vs 2.59 Gcycles (3.05x)",
        "measured read-map band purity: optimized {:.2f}, "
        "non-optimized {:.2f}".format(opt_purity, non_purity),
        "measured remote-access fraction: optimized {:.1%}, "
        "non-optimized {:.1%}".format(opt_remote, non_remote),
        "measured makespan: {} vs {} cycles ({:.2f}x speedup)".format(
            non_result.makespan, opt_result.makespan, speedup),
    ])
