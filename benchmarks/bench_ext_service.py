"""Extension — multi-tenant trace-analysis service (ISSUE 10).

Mapping: docs/paper-mapping.md (Sec. VI scalable-analysis claims).

Aftermath is an interactive tool; the serving layer makes it a
*shared* interactive tool: N analysts point thin clients at one
server and the :class:`repro.service.pool.MappedCachePool` gives all
of them zero-copy views of one ``.ostc`` mapping instead of N
parses.  This bench pins that contract end to end — real HTTP, real
threads, real JSON:

* **pooled throughput** — 16 concurrent clients, each with its own
  session on the same 1M-event trace, hammer the ``stats`` endpoint
  through persistent connections; requests/sec plus p50/p99 request
  latency are recorded;
* **per-request-reopen baseline** — the same server in
  ``reopen_per_request=True`` mode (every request parses the file,
  the naive one-open-per-request design) serves the same clients;
* **the floor** — pooled must beat reopen by >= 5x
  (``pr10/service_throughput/pool_speedup``, enforced by
  ``tools/perf_gate.py``; skipped on 1-CPU runners, where a
  threading server cannot overlap its request handling).

Timings land in ``benchmarks/results/`` (human-readable) and the
``pr10`` section of ``BENCH_HISTORY.json`` (machine-readable).
"""

import os
import statistics
import threading
import time

import pytest

from bench_json import record
from figutils import write_result
from repro.service import ServiceClient, start_server
from repro.trace_format import read_trace
from repro.trace_format.synthesize import write_synthetic_trace

#: Event records per scale.  The default is the 1M-event trace the
#: acceptance criterion names; ``small`` keeps the CI smoke path fast.
_EVENTS = {"small": 8_000, "default": 1_000_000, "paper": 2_000_000}

#: Concurrent clients (the acceptance criterion's 16).
CLIENTS = 16

#: ``stats`` requests per client in the pooled phase — enough for a
#: stable p99 (16 x 8 = 128 samples) without dragging the run out.
POOLED_REQUESTS = 8

#: Requests/sec floor multiplier: pooled vs. per-request reopen.
SPEEDUP_FLOOR = 5.0


@pytest.fixture(scope="module")
def service_trace(scale, tmp_path_factory):
    """(path, events): the bench trace with its sidecar pre-built, so
    the pooled phase measures serving, not the one-off cache write."""
    events = _EVENTS.get(scale, _EVENTS["default"])
    path = str(tmp_path_factory.mktemp("service") / "service.ost")
    write_synthetic_trace(path, events=events, nodes=4,
                          cores_per_node=4, task_types=6, seed=10)
    read_trace(path, cache=True)           # writes the .ostc sidecar
    return path, events


def _drive(url, path, requests, barrier, latencies, limit=None):
    """One client: open a session, then time ``requests`` stats
    round trips (appending seconds to ``latencies``).

    ``limit`` (the reopen baseline) throttles the open as well as the
    requests: 16 unthrottled opens against a parse-per-request server
    queue behind the GIL, and the last in line would blow through any
    sane client timeout.
    """
    client = ServiceClient(url, timeout=600.0)
    if limit is not None:
        with limit:
            opened = client.open(path)
    else:
        opened = client.open(path)
    barrier.wait()
    for __ in range(requests):
        if limit is not None:
            limit.acquire()
        try:
            begin = time.perf_counter()
            reply = client.stats(opened["session"])
            latencies.append(time.perf_counter() - begin)
        finally:
            if limit is not None:
                limit.release()
    assert reply["tasks"] > 0
    client.close(opened["session"])
    client.close_connection()


def _run_clients(server, path, requests, limit=None):
    """Fan ``CLIENTS`` driver threads at ``server``; returns
    (wall_seconds, per-request latencies)."""
    barrier = threading.Barrier(CLIENTS + 1)
    latencies = []
    threads = [threading.Thread(target=_drive,
                                args=(server.url, path, requests,
                                      barrier, latencies, limit))
               for __ in range(CLIENTS)]
    for thread in threads:
        thread.start()
    barrier.wait()
    begin = time.perf_counter()
    for thread in threads:
        thread.join()
    return time.perf_counter() - begin, latencies


def test_service_throughput(scale, service_trace):
    """Tentpole criterion: the shared pool serves 16 concurrent
    clients >= 5x faster than a per-request-reopen server (CPU-gated),
    with identical statistics either way."""
    path, events = service_trace
    cpus = os.cpu_count() or 1

    pooled_server = start_server(width=512, height=128)
    try:
        # Warm once: the first open parses the sidecar header and
        # builds the session-independent indexes.
        warm = ServiceClient(pooled_server.url)
        warm_stats = warm.stats(warm.open(path)["session"])
        warm.close_connection()
        pooled_seconds, pooled_latencies = _run_clients(
            pooled_server, path, POOLED_REQUESTS)
        pool_counters = pooled_server.service.pool.stats()
    finally:
        pooled_server.shutdown()
    assert pool_counters["resident"] == 1
    assert pool_counters["misses"] == 1

    baseline_server = start_server(width=512, height=128,
                                   reopen_per_request=True, cache=False)
    try:
        # One request per client: every single one re-parses the
        # trace, which is the point of the baseline.  At most two in
        # flight, so 16 concurrent parses cannot stack 16 transient
        # stores in memory; the parse is GIL-bound, so the cap does
        # not slow the baseline down.
        check = ServiceClient(baseline_server.url)
        reopen_stats = check.stats(check.open(path)["session"])
        check.close_connection()
        baseline_seconds, baseline_latencies = _run_clients(
            baseline_server, path, 1, limit=threading.Semaphore(2))
    finally:
        baseline_server.shutdown()
    for key in ("tasks", "average_parallelism", "state_cycles"):
        assert warm_stats[key] == reopen_stats[key]

    pooled_rps = len(pooled_latencies) / pooled_seconds
    baseline_rps = len(baseline_latencies) / baseline_seconds
    speedup = pooled_rps / baseline_rps if baseline_rps else 0.0
    p50_ms = 1e3 * statistics.median(pooled_latencies)
    p99_ms = 1e3 * sorted(pooled_latencies)[
        max(0, int(0.99 * len(pooled_latencies)) - 1)]

    gated = scale != "small" and cpus >= 2
    write_result("ext_service_throughput", [
        "Extension: multi-tenant trace-analysis service — shared",
        "mapped pool vs. per-request reopen (Sec. VI scalable",
        "analysis at serving granularity).",
        "trace: {} events; {} clients, {} cpus".format(
            events, CLIENTS, cpus),
        "pooled: {} requests in {:.3f} s = {:.1f} req/s".format(
            len(pooled_latencies), pooled_seconds, pooled_rps),
        "pooled latency: p50 {:.1f} ms, p99 {:.1f} ms".format(
            p50_ms, p99_ms),
        "reopen baseline: {} requests in {:.3f} s = {:.2f} req/s"
        .format(len(baseline_latencies), baseline_seconds,
                baseline_rps),
        "pool speedup: {:.2f}x (required: >= {:.0f}x at default "
        "scale on >= 2 CPUs)".format(speedup, SPEEDUP_FLOOR),
        "stats identical across pooled/reopen servers: True",
    ])
    payload = {
        "scale": scale, "events": events, "clients": CLIENTS,
        "requests": len(pooled_latencies), "cpus": cpus,
        "pooled_rps": round(pooled_rps, 2),
        "pooled_p50_ms": round(p50_ms, 3),
        "pooled_p99_ms": round(p99_ms, 3),
        "baseline_rps": round(baseline_rps, 4),
        "pool_speedup": round(speedup, 2),
    }
    if cpus < 2:
        # A threading server on one CPU cannot overlap request
        # handling; record the datapoint but tell the perf gate not
        # to enforce the floor on it.
        payload["gate"] = "skip"
        payload["gate_reason"] = "needs >= 2 CPUs, machine has {}" \
            .format(cpus)
    record("service_throughput", payload, section="pr10")
    if gated:
        assert speedup >= SPEEDUP_FLOOR


def test_pool_sharing_counters(service_trace):
    """Soundness: N sessions on one trace cost one parse (N-1 pool
    hits), and closing sessions does not evict the mapping."""
    path, __ = service_trace
    server = start_server()
    try:
        client = ServiceClient(server.url)
        opens = [client.open(path) for __ in range(4)]
        assert [reply["shared"] for reply in opens] \
            == [False, True, True, True]
        for reply in opens:
            client.close(reply["session"])
        health = client.health()
        assert health["sessions"] == 0
        assert health["pool"]["resident"] == 1
        assert health["pool"]["misses"] == 1
        client.close_connection()
    finally:
        server.shutdown()
