"""Fig. 19 — task duration as a function of the branch misprediction
rate, with least-squares regression.

Paper: after filtering outliers below 1 Mcycles and exporting the
per-task data, a linear regression yields a coefficient of
determination of 0.83 — statistical evidence that conditional updates
drive the duration spread.  Making the update unconditional reduces the
mean duration of the main computation tasks from 9.76 to 7.73 Mcycles
and the standard deviation from 1.18 Mcycles to 335 Kcycles.

Mapping: docs/paper-mapping.md.
"""


from figutils import write_result
from repro.core import (DurationFilter, TaskTypeFilter,
                        duration_vs_counter_rate, task_duration_stats)


def test_fig19_duration_vs_mispredictions(benchmark, kmeans_baseline,
                                          kmeans_fixed):
    __, baseline = kmeans_baseline
    __, fixed = kmeans_fixed
    compute = (TaskTypeFilter("kmeans_distance")
               & DurationFilter(minimum=1_000_000))

    rates, durations, regression = benchmark(
        duration_vs_counter_rate, baseline, "branch_mispredictions",
        compute)

    assert regression.slope > 0
    assert 0.70 <= regression.r_squared <= 0.95

    base_mean, base_std = task_duration_stats(baseline, compute)
    fixed_mean, fixed_std = task_duration_stats(fixed, compute)
    assert fixed_mean < base_mean * 0.9
    assert fixed_std < base_std / 2.5

    write_result("fig19_correlation", [
        "Fig. 19: duration vs branch misprediction rate",
        "paper: R^2 = 0.83; fix reduces mean 9.76M -> 7.73M cycles, "
        "stddev 1.18M -> 335K cycles",
        "measured: {}".format(regression.describe()),
        "measured fix: mean {:.2f}M -> {:.2f}M cycles, stddev "
        "{:.2f}M -> {:.0f}K cycles".format(
            base_mean / 1e6, fixed_mean / 1e6, base_std / 1e6,
            fixed_std / 1e3),
        "samples: {} tasks after outlier filtering".format(
            regression.samples),
    ])
