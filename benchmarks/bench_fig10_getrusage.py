"""Fig. 10 — discrete derivative of aggregated system time and resident
size (getrusage statistics).

Paper: both the memory footprint and the time spent in the operating
system increase almost exclusively during initialization, confirming
that first-touch physical page allocation makes the init tasks slow.

Mapping: docs/paper-mapping.md.
"""


from figutils import series, write_result
from repro.core import aggregate_counter_series, discrete_derivative


def rusage_derivatives(trace, intervals=100):
    edges, system_time = aggregate_counter_series(
        trace, "os_system_time_us", intervals)
    __, resident = aggregate_counter_series(trace, "os_resident_kb",
                                            intervals)
    return (edges, discrete_derivative(edges, system_time),
            discrete_derivative(edges, resident))


def test_fig10_rusage_derivatives(benchmark, seidel_opt):
    __, trace = seidel_opt
    edges, d_system, d_resident = benchmark(rusage_derivatives, trace)

    for derivative in (d_system, d_resident):
        total = derivative.sum()
        assert total > 0
        first_quarter = derivative[:25].sum()
        # The paper: growth happens almost exclusively during init.
        assert first_quarter / total > 0.9

    write_result("fig10_getrusage", [
        "Fig. 10: increase of system time / resident size",
        "paper: memory footprint and OS time increase almost "
        "exclusively during initialization",
        "measured: {:.1%} of system-time growth and {:.1%} of resident-"
        "size growth in the first quarter".format(
            d_system[:25].sum() / d_system.sum(),
            d_resident[:25].sum() / d_resident.sum()),
        "sys-time derivative (10 buckets): "
        + series(d_system.reshape(10, 10).mean(axis=1), "{:.2e}"),
        "resident derivative (10 buckets): "
        + series(d_resident.reshape(10, 10).mean(axis=1), "{:.2e}"),
    ])
