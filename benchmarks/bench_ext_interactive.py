"""Extension — memory-mapped columnar cache + vectorized render path.

Mapping: docs/paper-mapping.md (Section VI-B-c / Fig. 21 extensions).

The paper's interactivity rests on per-core sorted arrays, binary-
searched slices and min/max counter trees (Section VI-B-c), so that a
zoom or scroll re-renders in milliseconds (Fig. 21).  This bench
quantifies the two halves of the zero-copy interactive path on a
synthetic million-event trace:

* **cache reopen vs. cold parse** — ``read_trace(path, cache=True)``
  maps the ``.ostc`` columnar sidecar back instead of re-parsing the
  trace file; required to be at least 5x faster (in practice orders of
  magnitude), with the mapped store indistinguishable from the parsed
  one;
* **vectorized frame loop vs. the scalar reference** — a repeated
  zoom/pan script rendering counter overlays and discrete-event
  markers through the batched ``searchsorted``/``segment_minmax``
  kernels and the memoized min/max trees, against the original
  per-pixel/per-event loops; required to be at least 10x faster with
  bit-identical framebuffers across the object, columnar and
  memory-mapped stores.

The persisted render pyramids (ISSUE 8) add two latency ceilings on
the same trace:

* **first frame after reopen** — a cache reopen plus one counter
  overlay frame at the fit view must finish in under a millisecond:
  the sidecar serves the min/max pyramid levels, so no tree is built
  and the frame touches ~width entries (default-scale gated);
* **deep-zoom frame** — a warm counter frame at a view narrower than
  the framebuffer (``duration < width``, the widened-pixel regime) is
  O(width) by construction, so its sub-millisecond ceiling holds at
  any scale (``always`` in the perf gate).

Timings land in ``benchmarks/results/`` (human-readable) and the
``pr4``/``pr8`` sections of ``BENCH_HISTORY.json`` at the repo root
(machine-readable, uploaded as a CI artifact and enforced by
``tools/perf_gate.py``).  Speedup assertions are scale-gated: they
hold at the ``default``/``paper`` scales and are skipped at ``small``
(``--self-test``), where constant overheads dominate.
"""

import time
from dataclasses import replace

import numpy as np
import pytest

from bench_json import record
from figutils import write_result
from repro.core import anomalies, correlation, traces_equal
from repro.core.statistics import interval_report
from repro.render import (Framebuffer, TimelineView, render_counter,
                          render_discrete_events)
from repro.trace_format import read_trace, write_synthetic_trace

_EVENTS = {"small": 60_000, "default": 1_000_000, "paper": 4_000_000}

FRAME_WIDTH = 1024
FRAME_HEIGHT = 128
RENDER_CORES = (0, 1, 2, 3)


@pytest.fixture(scope="module")
def interactive_trace(scale, tmp_path_factory):
    events = _EVENTS.get(scale, _EVENTS["default"])
    path = tmp_path_factory.mktemp("interactive") / "big.ost"
    records = write_synthetic_trace(str(path), events=events)
    return str(path), records


def _timed(function, *args, **kwargs):
    t0 = time.perf_counter()
    result = function(*args, **kwargs)
    return time.perf_counter() - t0, result


def _frame_views(trace, frames=12):
    """The zoom/pan script: fit, zoom in 4 steps, then pan right."""
    view = TimelineView.fit(trace, FRAME_WIDTH, FRAME_HEIGHT)
    views = [view]
    for __ in range(4):
        view = view.zoom(2)
        views.append(view)
    while len(views) < frames:
        view = view.scroll(0.2)
        views.append(view)
    return views


def _render_frames(store, views, vectorized):
    """Render every frame of the script; returns the framebuffers."""
    frames = []
    for view in views:
        fb = Framebuffer(view.width, view.height)
        for core in RENDER_CORES:
            render_counter(store, 0, view, fb, core=core,
                           vectorized=vectorized)
        render_discrete_events(store, view, fb, vectorized=vectorized)
        frames.append(fb.pixels)
    return frames


def test_cache_reopen_vs_cold_parse(scale, interactive_trace):
    """Tentpole criterion: reopening through the mapped sidecar must
    beat re-parsing the trace file by >= 5x (scale-gated)."""
    path, records = interactive_trace
    cold_seconds, parsed = _timed(read_trace, path, columnar=True)
    write_seconds, first = _timed(read_trace, path, cache=True)
    reopen_seconds = min(_timed(read_trace, path, cache=True)[0]
                         for __ in range(5))
    mapped = read_trace(path, cache=True)
    assert (interval_report(mapped).describe()
            == interval_report(parsed).describe())
    if scale == "small":
        assert traces_equal(mapped, parsed)
    speedup = cold_seconds / reopen_seconds
    write_result("ext_interactive_cache", [
        "Extension: memory-mapped columnar cache (.ostc sidecar),",
        "Section VI-B-c taken to disk: reopen maps the per-core",
        "arrays instead of re-parsing the trace file.",
        "trace: {} records".format(records),
        "cold parse:          {:.3f} s".format(cold_seconds),
        "parse + cache write: {:.3f} s (first open)".format(
            write_seconds),
        "mapped reopen:       {:.6f} s".format(reopen_seconds),
        "reopen speedup: {:.0f}x (required: >= 5x at default scale)"
        .format(speedup),
    ])
    record("cache_reopen", {
        "scale": scale, "records": records,
        "cold_parse_s": cold_seconds,
        "first_open_with_cache_write_s": write_seconds,
        "mapped_reopen_s": reopen_seconds,
        "reopen_speedup": speedup,
    }, section="pr4")
    if scale != "small":
        assert speedup >= 5.0


def test_vectorized_frame_loop(scale, interactive_trace):
    """Tentpole criterion: the vectorized zoom/pan frame loop must
    beat the scalar per-pixel/per-event reference by >= 10x
    (scale-gated), with bit-identical framebuffers on the object,
    columnar and memory-mapped stores."""
    path, __ = interactive_trace
    read_trace(path, cache=True)              # ensure the sidecar
    mapped = read_trace(path, cache=True)     # the mmap-backed store
    columnar = read_trace(path, columnar=True)
    objects = columnar.to_objects()
    views = _frame_views(mapped)

    scalar_seconds, scalar_frames = _timed(_render_frames, columnar,
                                           views, False)
    _render_frames(mapped, views, True)       # warm the memoized trees
    vector_seconds = min(_timed(_render_frames, mapped, views, True)[0]
                         for __ in range(5))
    vector_frames = _render_frames(mapped, views, True)

    for scalar_fb, vector_fb in zip(scalar_frames, vector_frames):
        assert np.array_equal(scalar_fb, vector_fb)
    for store in (columnar, objects):
        for reference_fb, fb in zip(vector_frames,
                                    _render_frames(store, views, True)):
            assert np.array_equal(reference_fb, fb)

    per_frame = vector_seconds / len(views)
    speedup = scalar_seconds / vector_seconds
    write_result("ext_interactive_frames", [
        "Extension: vectorized interactive render path (Fig. 21):",
        "batched searchsorted + segment min/max kernels and memoized",
        "per-(core, counter) trees vs. the scalar per-pixel loops.",
        "script: {} frames, {} cores, {}x{} px".format(
            len(views), len(RENDER_CORES), FRAME_WIDTH, FRAME_HEIGHT),
        "scalar reference: {:.3f} s".format(scalar_seconds),
        "vectorized:       {:.4f} s ({:.2f} ms/frame)".format(
            vector_seconds, 1e3 * per_frame),
        "frame-loop speedup: {:.0f}x (required: >= 10x at default "
        "scale)".format(speedup),
        "framebuffers bit-identical across object/columnar/mmap: True",
    ])
    record("frame_loop", {
        "scale": scale, "frames": len(views),
        "scalar_reference_s": scalar_seconds,
        "vectorized_s": vector_seconds,
        "vectorized_ms_per_frame": 1e3 * per_frame,
        "frame_speedup": speedup,
    }, section="pr4")
    if scale != "small":
        assert speedup >= 10.0


def _counter_cores(store):
    """Cores carrying counter lanes, ascending (the synthetic trace
    samples counters on a subset of cores)."""
    return sorted({core for core, __ in store.counter_series})


def test_first_frame_after_reopen(scale, interactive_trace):
    """ISSUE 8 criterion: a cache reopen plus the first counter
    overlay frame stays under a millisecond at default scale — the
    persisted pyramid levels mean no tree build and no lane scan."""
    path, records = interactive_trace
    read_trace(path, cache=True)              # ensure the sidecar
    probe = read_trace(path, cache=True)
    cores = _counter_cores(probe)
    core = cores[0]
    view = TimelineView.fit(probe, FRAME_WIDTH, FRAME_HEIGHT)

    def first_frame():
        store = read_trace(path, cache=True)
        fb = Framebuffer(FRAME_WIDTH, FRAME_HEIGHT)
        render_counter(store, 0, view, fb, core=core)
        return store

    def all_lanes_frame():
        store = read_trace(path, cache=True)
        fb = Framebuffer(FRAME_WIDTH, FRAME_HEIGHT)
        for lane_core in cores:
            render_counter(store, 0, view, fb, core=lane_core)
        return store

    first_frame()                             # fault in the file pages
    reopen_ms = 1e3 * min(_timed(read_trace, path, cache=True)[0]
                          for __ in range(9))
    first_frame_ms = 1e3 * min(_timed(first_frame)[0]
                               for __ in range(9))
    all_lanes_ms = 1e3 * min(_timed(all_lanes_frame)[0]
                             for __ in range(9))
    write_result("ext_interactive_first_frame", [
        "Extension: persisted render pyramids (.ostc sidecar),",
        "Section VI-B-c trees written at cache time and memory-mapped",
        "back — the first frame after a reopen builds nothing.",
        "trace: {} records".format(records),
        "mapped reopen:            {:.3f} ms".format(reopen_ms),
        "reopen + 1-lane frame:    {:.3f} ms (required: < 1 ms at "
        "default scale)".format(first_frame_ms),
        "reopen + {}-lane frame:    {:.3f} ms (reported, ungated)"
        .format(len(cores), all_lanes_ms),
    ])
    record("first_frame_reopen", {
        "scale": scale, "records": records,
        "reopen_ms": reopen_ms,
        "first_frame_reopen_ms": first_frame_ms,
        "all_lanes_frame_ms": all_lanes_ms,
        "counter_lanes": len(cores),
    }, section="pr8")
    if scale != "small":
        assert first_frame_ms < 1.0


def test_deep_zoom_frame(scale, interactive_trace):
    """ISSUE 8 criterion: a warm deep-zoom counter frame (view
    narrower than the framebuffer, the widened-pixel regime) stays
    under a millisecond — O(width) at any trace size, so the bound is
    asserted at every scale and ``always``-enforced by the gate."""
    path, records = interactive_trace
    read_trace(path, cache=True)              # ensure the sidecar
    store = read_trace(path, cache=True)
    core = _counter_cores(store)[0]
    fit = TimelineView.fit(store, FRAME_WIDTH, FRAME_HEIGHT)
    span = int(min(FRAME_WIDTH // 2, max(store.duration, 2)))
    center = (store.begin + store.end) // 2
    view = replace(fit, start=int(center - span // 2),
                   end=int(center - span // 2 + span))
    assert view.duration < view.width         # the zoomed kernel path

    def deep_frame():
        fb = Framebuffer(FRAME_WIDTH, FRAME_HEIGHT)
        render_counter(store, 0, view, fb, core=core)

    deep_frame()                              # warm the memoized tree
    deep_ms = 1e3 * min(_timed(deep_frame)[0] for __ in range(9))
    write_result("ext_interactive_deep_zoom", [
        "Extension: deep-zoom counter frame (duration < width) via",
        "the batched widened-pixel kernel (Fig. 21b regime).",
        "trace: {} records, view span {} cycles".format(records, span),
        "deep-zoom frame: {:.3f} ms (required: < 1 ms, any scale)"
        .format(deep_ms),
    ])
    record("deep_zoom_frame", {
        "scale": scale, "records": records,
        "view_span_cycles": span,
        "deep_zoom_frame_ms": deep_ms,
    }, section="pr8")
    assert deep_ms < 1.0


def test_analysis_identical_across_stores(scale, interactive_trace):
    """The vectorized analysis outputs (anomaly scan, per-task counter
    attribution) are bit-identical on the object, columnar and
    memory-mapped stores."""
    path, __ = interactive_trace
    read_trace(path, cache=True)
    mapped = read_trace(path, cache=True)
    columnar = read_trace(path, columnar=True)
    objects = columnar.to_objects()
    expected_scan = anomalies.scan(columnar)
    __, expected_increase = correlation.counter_increase_per_task(
        columnar, 0)
    for store in (mapped, objects):
        assert anomalies.scan(store) == expected_scan
        __, increases = correlation.counter_increase_per_task(store, 0)
        assert np.array_equal(increases, expected_increase)
    write_result("ext_interactive_parity", [
        "Anomaly scan and per-task counter attribution bit-identical",
        "across object, columnar and memory-mapped stores: True",
        "findings: {}".format(len(expected_scan)),
    ])
