"""Fig. 3 — number of idle workers over normalized execution time.

Paper: the derived counter (per-interval time in the idle state, summed
over workers) peaks above half the number of cores, confirming the two
idle phases seen on the timeline.

Mapping: docs/paper-mapping.md.
"""


from figutils import series, write_result
from repro.core import WorkerState, state_count_series


def test_fig03_idle_worker_series(benchmark, seidel_opt):
    __, trace = seidel_opt
    edges, idle = benchmark(state_count_series, trace, WorkerState.IDLE,
                            200)

    assert len(idle) == 200
    assert (idle >= 0).all()
    assert (idle <= trace.num_cores).all()
    # The paper's claim: peaks exceed half the number of cores.
    assert idle.max() > trace.num_cores / 2

    coarse = idle.reshape(20, 10).mean(axis=1)
    write_result("fig03_idle_workers", [
        "Fig. 3: number of idle workers (200 intervals, {} cores)"
        .format(trace.num_cores),
        "paper: peaks exceed half the cores (>96 of 192), at ~15% and "
        "~100% of execution",
        "measured peak: {:.1f} of {} cores at {:.0%} of execution"
        .format(idle.max(), trace.num_cores,
                int(idle.argmax()) / len(idle)),
        "series (20 buckets): " + series(coarse, "{:.1f}"),
    ])
