"""Extension — parallel multi-trace experiment engine.

Mapping: docs/paper-mapping.md (Figs. 12–19 extensions).

The paper's evaluation is comparative — block sizes (Fig. 12),
schedulers and placements (Figs. 13–15), counter correlations
(Figs. 17–19) — so the repo's experiment engine must sweep and
contrast *suites* of traces, not inspect one at a time.  This bench
quantifies and pins the engine's two contracts:

* **pooled sweep scaling** — ``analyze_traces`` over a suite of
  synthetic million-event-class traces through a 4-worker process
  pool, each worker opening its trace via the memory-mapped ``.ostc``
  sidecar, must beat the serial loop by >= 3x (near-linear on 4
  cores; gated to the default/paper scales on machines with >= 4
  CPUs) with per-trace summaries identical to the serial pass;
* **diff soundness** — diffing a trace against itself yields an empty
  report at the strictest tolerance, while diffing two different
  sweep points reports deviations.

Timings land in ``benchmarks/results/`` (human-readable) and the
``pr5`` section of ``BENCH_HISTORY.json`` (machine-readable, enforced
by ``tools/perf_gate.py`` in CI).
"""

import os
import time

import pytest

from bench_json import record
from figutils import write_result
from repro.analysis.experiments import (EXACT, analyze_traces,
                                        diff_trace_files,
                                        merged_statistics, run_suite,
                                        sweep_table, synthetic_sweep)
from repro.trace_format import streaming_statistics

_EVENTS = {"small": 6_000, "default": 1_000_000, "paper": 2_000_000}
SUITE_TRACES = 4
POOL_WORKERS = 4


@pytest.fixture(scope="module")
def experiment_suite(scale, tmp_path_factory):
    """>= 4 synthetic traces with warm ``.ostc`` sidecars."""
    events = _EVENTS.get(scale, _EVENTS["default"])
    directory = str(tmp_path_factory.mktemp("suite"))
    specs = synthetic_sweep(SUITE_TRACES, events=events)
    paths = run_suite(specs, directory, workers=POOL_WORKERS)
    return paths, events


def _timed(function, *args, **kwargs):
    t0 = time.perf_counter()
    result = function(*args, **kwargs)
    return time.perf_counter() - t0, result


def test_pooled_sweep_scaling(scale, experiment_suite):
    """Tentpole criterion: the pooled sweep must analyze >= 4 traces
    >= 3x faster than the serial loop on 4 workers (scale- and
    CPU-gated), with identical per-trace summaries."""
    paths, events = experiment_suite
    cpus = os.cpu_count() or 1
    analyze_traces(paths, workers=1)          # warm page cache + trees
    # Best-of-N on both sides (like the cache-reopen bench): shared CI
    # runners are noisy, and the floor is about capability, not one
    # unlucky scheduling quantum.
    serial_seconds, serial = min(
        (_timed(analyze_traces, paths, workers=1) for __ in range(2)),
        key=lambda timing: timing[0])
    pool_seconds, pooled = min(
        (_timed(analyze_traces, paths, workers=POOL_WORKERS)
         for __ in range(3)),
        key=lambda timing: timing[0])
    assert [summary.name for summary in pooled] \
        == [summary.name for summary in serial]
    for mine, theirs in zip(serial, pooled):
        assert mine == theirs
    speedup = serial_seconds / pool_seconds if pool_seconds else 0.0
    gated = scale != "small" and cpus >= POOL_WORKERS
    write_result("ext_experiments_scaling", [
        "Extension: parallel multi-trace experiment engine —",
        "pooled sweep analysis vs. the serial loop (Figs. 12-19",
        "comparisons at suite granularity).",
        "suite: {} traces x {} events, {} workers, {} cpus".format(
            len(paths), events, POOL_WORKERS, cpus),
        "serial sweep: {:.3f} s".format(serial_seconds),
        "pooled sweep: {:.3f} s".format(pool_seconds),
        "sweep speedup: {:.2f}x (required: >= 3x on 4 workers at "
        "default scale)".format(speedup),
        "summaries identical across serial/pooled: True",
    ])
    payload = {
        "scale": scale, "traces": len(paths), "events": events,
        "workers": POOL_WORKERS, "cpus": cpus,
        "serial_s": serial_seconds, "pool_s": pool_seconds,
        "pool_speedup": speedup,
    }
    if cpus < POOL_WORKERS:
        # Too few cores to show pool scaling; record the datapoint but
        # tell the perf gate not to enforce the floor on it.
        payload["gate"] = "skip"
        payload["gate_reason"] = "needs >= {} CPUs, machine has {}" \
            .format(POOL_WORKERS, cpus)
    record("sweep_scaling", payload, section="pr5")
    if gated:
        assert speedup >= 3.0


def test_aggregation_is_exact(experiment_suite):
    """The cross-trace merge equals per-file accumulation: merged
    record/task counts are the sums, and time bounds the envelopes,
    of the individual streaming passes."""
    paths, __ = experiment_suite
    individual = [streaming_statistics(path) for path in paths]
    merged = merged_statistics(paths)
    assert merged.records == sum(stats.records for stats in individual)
    assert merged.total_tasks == sum(stats.total_tasks
                                     for stats in individual)
    assert merged.begin == min(stats.begin for stats in individual)
    assert merged.end == max(stats.end for stats in individual)
    table = sweep_table(analyze_traces(paths, workers=1))
    assert len(table) == len(paths)
    write_result("ext_experiments_aggregate", [
        "Cross-trace aggregation exactness over {} traces:".format(
            len(paths)),
        "merged records: {} (= sum of parts)".format(merged.records),
        "merged tasks:   {} (= sum of parts)".format(
            merged.total_tasks),
        "sweep table rows: {}".format(len(table)),
    ])


def test_diff_engine_soundness(experiment_suite):
    """Self-diff is empty at the strictest tolerance; two different
    sweep points deviate."""
    paths, __ = experiment_suite
    self_report = diff_trace_files(paths[0], paths[0],
                                   tolerances=EXACT)
    assert self_report.is_empty
    cross_report = diff_trace_files(paths[0], paths[1],
                                    tolerances=EXACT)
    assert not cross_report.is_empty
    write_result("ext_experiments_diff", [
        "Trace-diff soundness:",
        "self-diff empty at zero tolerance: True",
        "cross-diff deviations (seed 0 vs seed 1): {}".format(
            len(cross_report)),
    ])
