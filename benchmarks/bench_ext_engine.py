"""Extension — crash-resilient durable experiment engine.

Mapping: docs/paper-mapping.md (Figs. 12–19 suite infrastructure).

The paper's comparative evaluation is only as good as the sweeps
behind it, and long sweeps die: workers get OOM-killed, machines
reboot, one mis-parameterized spec throws.  This bench pins the two
contracts of the durable engine (ISSUE 9):

* **per-trace analyze throughput** — the journal, lease heartbeats,
  content-store verification and CRC-checked trace I/O wrap every
  sweep point, so the per-trace analysis path must stay fast: one
  fixed-size corpus (scale-independent, comparable across machines)
  summarized single-core through the mapped sidecar must sustain
  >= 50k events/s, recorded as the always-enforced
  ``pr9/analyze_throughput`` metric of ``tools/perf_gate.py`` — like
  the ingest floor, it holds even on a 1-CPU runner and is never
  skipped;
* **crash-kill-resume** — a sweep SIGKILLed mid-flight (the whole
  process group, workers included) resumes from its journal alone,
  re-simulates **zero** completed points, and converges to a trace
  set bit-identical to an uninterrupted run.

Timings land in ``benchmarks/results/`` (human-readable) and the
``pr9`` section of ``BENCH_HISTORY.json`` (machine-readable, enforced
by ``tools/perf_gate.py`` in CI).
"""

import hashlib
import os
import signal
import subprocess
import sys
import time

import pytest

from bench_json import record
from figutils import write_result
from repro.analysis.experiments import analyze_traces, resume_suite
from repro.analysis.experiments.queue import JobQueue, journal_path
from repro.trace_format.synthesize import write_synthetic_trace

#: Event records in the fixed corpus (deliberately NOT scaled by
#: REPRO_SCALE: an always-enforced gate needs a stable denominator).
CORPUS_EVENTS = 40_000

#: Events/second the cached single-core analysis must sustain.  The
#: local reference machine summarizes ~1.37M events/s through the
#: mapped sidecar; the floor leaves >= 27x headroom for slow CI
#: runners, and the perf gate enforces it at *every* scale
#: (gate: always).
FLOOR_EVENTS_PER_SEC = 50_000.0

#: The interrupted sweep: spec count, per-trace events, and the
#: per-job delay that widens the kill window deterministically.
CRASH_SPECS = 6
CRASH_EVENTS = 4_000
CRASH_JOB_DELAY = 0.5


def test_analyze_throughput(scale, tmp_path):
    """Always-enforced criterion: the engine's per-trace analysis
    (mapped-sidecar open + full summary) sustains >= 50k events/s on
    one core."""
    path = str(tmp_path / "corpus.ost")
    write_synthetic_trace(path, events=CORPUS_EVENTS, nodes=2,
                          cores_per_node=4, task_types=5, seed=9)
    analyze_traces([path], workers=1)      # warm: writes the sidecar
    seconds = []
    for __ in range(3):
        begin = time.perf_counter()
        summaries = analyze_traces([path], workers=1)
        seconds.append(time.perf_counter() - begin)
    assert summaries[0].tasks > 0
    throughput = CORPUS_EVENTS / min(seconds)
    write_result("ext_engine_throughput", [
        "Extension: durable experiment engine — per-trace analyze",
        "throughput (single core, mapped .ostc sidecar):",
        "corpus: {} events".format(CORPUS_EVENTS),
        "best of 3: {:.4f} s -> {:.0f} events/s".format(
            min(seconds), throughput),
        "floor: {:.0f} events/s (enforced at every scale)".format(
            FLOOR_EVENTS_PER_SEC),
    ])
    record("analyze_throughput", {
        "scale": scale, "events": CORPUS_EVENTS,
        "gate": "always",
        "events_per_sec": throughput,
        "best_s": min(seconds),
    }, section="pr9")
    # No scale gate here on purpose: the corpus is fixed-size and the
    # path is single-core, so the floor must hold everywhere.
    assert throughput >= FLOOR_EVENTS_PER_SEC


def _suite_hashes(directory):
    return {
        name: hashlib.sha256(
            open(os.path.join(directory, name), "rb").read()).hexdigest()
        for name in sorted(os.listdir(directory))
        if name.endswith(".ost") and not name.startswith(".")}


@pytest.mark.skipif(not hasattr(os, "killpg"),
                    reason="needs POSIX process groups")
def test_crash_kill_resume(scale, tmp_path):
    """Robustness criterion: SIGKILL a sweep mid-flight (workers and
    all), resume from the journal alone, and re-simulate zero
    completed points — converging to a bit-identical trace set."""
    directory = str(tmp_path / "suite")
    child = (
        "import sys\n"
        "from repro.analysis.experiments import synthetic_sweep, "
        "run_suite\n"
        "run_suite(synthetic_sweep({}, events={}), sys.argv[1], "
        "workers=2)\n").format(CRASH_SPECS, CRASH_EVENTS)
    env = dict(os.environ,
               PYTHONPATH=os.pathsep.join(sys.path),
               REPRO_ENGINE_TEST_JOB_DELAY=str(CRASH_JOB_DELAY))
    process = subprocess.Popen([sys.executable, "-c", child, directory],
                               env=env, start_new_session=True)
    # Kill once the journal shows genuine partial progress: at least
    # one point completed, at least one still outstanding.
    done_at_kill = 0
    deadline = time.monotonic() + 60.0
    try:
        while time.monotonic() < deadline:
            if os.path.exists(journal_path(directory)):
                with JobQueue(journal_path(directory)) as queue:
                    counts = queue.counts()
                if 0 < counts["done"] < CRASH_SPECS:
                    done_at_kill = counts["done"]
                    break
            if process.poll() is not None:
                pytest.fail("sweep finished before it could be killed "
                            "— widen CRASH_JOB_DELAY")
            time.sleep(0.05)
    finally:
        try:
            os.killpg(process.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        process.wait()
    assert 0 < done_at_kill < CRASH_SPECS
    begin = time.perf_counter()
    report = resume_suite(directory, workers=2)
    resume_seconds = time.perf_counter() - begin
    assert report.resimulated == 0
    assert report.counts["done"] == CRASH_SPECS
    assert not report.quarantined
    # Exactly the interrupted remainder was simulated, nothing more.
    assert report.simulated == CRASH_SPECS - report.done_before
    # The resumed set must be bit-identical to an uninterrupted run.
    pristine = str(tmp_path / "pristine")
    from repro.analysis.experiments import run_suite, synthetic_sweep
    run_suite(synthetic_sweep(CRASH_SPECS, events=CRASH_EVENTS),
              pristine, workers=2)
    assert _suite_hashes(directory) == _suite_hashes(pristine)
    write_result("ext_engine_crash_resume", [
        "Extension: durable experiment engine — SIGKILL/resume:",
        "suite: {} specs x {} events, 2 workers".format(
            CRASH_SPECS, CRASH_EVENTS),
        "completed points at kill: {}".format(done_at_kill),
        "re-simulated completed points on resume: {} (required: "
        "0)".format(report.resimulated),
        "simulated on resume: {} (the interrupted remainder)".format(
            report.simulated),
        "resume wall time: {:.3f} s".format(resume_seconds),
        "final trace set bit-identical to uninterrupted run: True",
    ])
    record("crash_resume", {
        "scale": scale, "specs": CRASH_SPECS, "events": CRASH_EVENTS,
        "done_at_kill": done_at_kill,
        "resimulated": report.resimulated,
        "simulated_on_resume": report.simulated,
        "resume_s": resume_seconds,
        "bit_identical": True,
    }, section="pr9")
