"""Extension — format-plural trace ingestion throughput.

The ingestion registry (``repro.trace_format.ingest``) lets every
analysis run on foreign traces: Paraver ``.prv`` and Chrome
trace-event JSON files dispatch by content sniffing and load into the
same stores as native files.  This bench pins the cost of that
frontend: one fixed-size corpus (scale-independent, so the number is
comparable across machines and CI scales) is exported to every
registered format and ingested back, single-core, with the throughput
recorded as the always-enforced ``pr6/ingest_throughput`` metric of
``tools/perf_gate.py`` — unlike the pool-scaling benches, this floor
holds even on a 1-CPU runner, so it is never skipped.

Mapping: docs/paper-mapping.md.
"""

import time

import pytest

from bench_json import record
from figutils import write_result
from repro.trace_format import (export_chrome, export_paraver,
                                ingest_trace, read_trace)
from repro.trace_format.synthesize import write_synthetic_trace

#: Event records in the fixed corpus (deliberately NOT scaled by
#: REPRO_SCALE: an always-enforced gate needs a stable denominator).
CORPUS_EVENTS = 40_000

#: Events/second every format must sustain on one core.  The local
#: reference machine ingests 175k-260k events/s per format; the floor
#: leaves >= 17x headroom for slow CI runners, and the perf gate
#: enforces it at *every* scale (gate: always).
FLOOR_EVENTS_PER_SEC = 10_000.0


@pytest.fixture(scope="module")
def ingest_corpus(tmp_path_factory):
    """One synthetic trace exported to every registered format."""
    directory = tmp_path_factory.mktemp("ingest")
    native = str(directory / "corpus.ost")
    write_synthetic_trace(native, events=CORPUS_EVENTS, nodes=2,
                          cores_per_node=4, task_types=5, seed=9)
    trace = read_trace(native)
    paraver = str(directory / "corpus.prv")
    chrome = str(directory / "corpus.json")
    export_paraver(trace, paraver)
    export_chrome(trace, chrome)
    paths = {"native": native, "paraver": paraver, "chrome": chrome}
    return trace, paths


def test_ingest_throughput(scale, ingest_corpus):
    """Always-enforced criterion: every registered source ingests the
    corpus at >= 10k events/s on a single core, with the task stream
    preserved exactly."""
    trace, paths = ingest_corpus
    throughput = {}
    for name, path in sorted(paths.items()):
        seconds = []
        for __ in range(3):
            begin = time.perf_counter()
            ingested = ingest_trace(path)
            seconds.append(time.perf_counter() - begin)
        assert len(ingested.tasks) == len(trace.tasks), name
        throughput[name] = CORPUS_EVENTS / min(seconds)
    slowest = min(throughput.values())
    write_result("ext_ingest", [
        "Extension: format-plural ingestion registry",
        "one {}-event corpus, ingested single-core per format:".format(
            CORPUS_EVENTS),
    ] + ["  {:8s} {:>10.0f} events/s".format(name, value)
         for name, value in sorted(throughput.items())] + [
        "slowest format: {:.0f} events/s (floor: {:.0f}, enforced "
        "at every scale)".format(slowest, FLOOR_EVENTS_PER_SEC),
    ])
    record("ingest_throughput", {
        "scale": scale, "events": CORPUS_EVENTS,
        "gate": "always",
        "events_per_sec": slowest,
        "native_events_per_sec": throughput["native"],
        "paraver_events_per_sec": throughput["paraver"],
        "chrome_events_per_sec": throughput["chrome"],
    }, section="pr6")
    # No scale gate here on purpose: the corpus is fixed-size and the
    # path is single-core, so the floor must hold everywhere.
    assert slowest >= FLOOR_EVENTS_PER_SEC
