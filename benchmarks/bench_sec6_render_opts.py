"""Section VI-B — rendering optimizations.

Paper: (a) every pixel is drawn once, using the predominant state of
its interval; (b) adjacent same-color pixels are aggregated into a
single rectangle call; for counters, one vertical [pmin, pmax] line per
pixel replaces per-sample lines, dramatically reducing drawing
operations at coarse zoom.

Mapping: docs/paper-mapping.md.
"""

import numpy as np

from figutils import write_result
from repro.core import CounterIndex
from repro.render import (Framebuffer, StateMode, TimelineView,
                          render_counter, render_timeline)


def test_state_rendering_optimized(benchmark, seidel_opt, scale):
    __, trace = seidel_opt
    view = TimelineView.fit(trace, 800, 4 * trace.num_cores)
    framebuffer = benchmark(render_timeline, trace, StateMode(), view,
                            optimized=True)
    naive = render_timeline(trace, StateMode(), view, optimized=False)

    # Aggregation only pays off once events outnumber pixels; a small
    # trace still must never draw more rectangles than the naive path.
    if scale == "small":
        assert framebuffer.rect_calls < naive.rect_calls
    else:
        assert framebuffer.rect_calls < naive.rect_calls / 2
    write_result("sec6_render_state", [
        "Section VI-B: state-mode rendering operations at full zoom-out",
        "{} state intervals on {} cores, {}px wide".format(
            len(trace.states), trace.num_cores, view.width),
        "naive (one rect per event): {} rect calls".format(
            naive.rect_calls),
        "optimized (predominant pixel + aggregation): {} rect calls "
        "({:.1f}x fewer)".format(
            framebuffer.rect_calls,
            naive.rect_calls / framebuffer.rect_calls),
    ])


def test_state_rendering_naive_baseline(benchmark, seidel_opt):
    __, trace = seidel_opt
    view = TimelineView.fit(trace, 800, 4 * trace.num_cores)
    benchmark(render_timeline, trace, StateMode(), view, optimized=False)


def dense_counter_trace(samples=100_000):
    """A high-frequency counter, the Fig. 21 scenario: at coarse zoom
    many samples fall within each horizontal pixel."""
    from repro.core import TopologyInfo, TraceBuilder

    builder = TraceBuilder(TopologyInfo(1, 1))
    counter = builder.describe_counter("dense")
    rng = np.random.default_rng(3)
    values = np.cumsum(rng.normal(size=samples))
    for index in range(samples):
        builder.counter_sample(0, counter, index * 7, values[index])
    return builder.build()


def test_counter_rendering_optimized(benchmark, seidel_opt):
    """Fig. 21: one min/max vertical line per pixel vs per-sample lines."""
    trace = dense_counter_trace()
    view = TimelineView.fit(trace, 800, 200)
    index = CounterIndex(trace)

    def optimized():
        fb = Framebuffer(view.width, 200)
        return render_counter(trace, "dense", view, fb, core=0,
                              counter_index=index)

    calls = benchmark(optimized)
    naive_fb = Framebuffer(view.width, 200)
    naive_calls = render_counter(trace, "dense", view, naive_fb, core=0,
                                 optimized=False)
    samples = len(trace.counter_samples(0, 0)[0])
    assert calls <= view.width
    assert calls < naive_calls / 50
    write_result("sec6_render_counter", [
        "Section VI-B (Fig. 21): counter rendering operations "
        "({} samples, {}px wide)".format(samples, view.width),
        "naive (line per sample pair): {} draw calls".format(
            naive_calls),
        "optimized (one min/max line per pixel): {} draw calls "
        "({:.0f}x fewer)".format(calls, naive_calls / calls),
    ])


def test_counter_rendering_naive_baseline(benchmark):
    trace = dense_counter_trace()
    view = TimelineView.fit(trace, 800, 200)

    def naive():
        fb = Framebuffer(view.width, 200)
        return render_counter(trace, "dense", view, fb, core=0,
                              optimized=False)

    benchmark(naive)


def test_zoomed_rendering_stays_fast(benchmark, seidel_opt):
    """Deep zoom renders a small slice; the binary-search slicing keeps
    the cost proportional to visible events, not trace size."""
    __, trace = seidel_opt
    view = TimelineView.fit(trace, 800, 4 * trace.num_cores).zoom(64.0)
    framebuffer = benchmark(render_timeline, trace, StateMode(), view)
    assert framebuffer.pixels_drawn > 0
