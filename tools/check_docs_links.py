#!/usr/bin/env python3
"""Dangling-reference check over the documentation.

Documentation rots by pointing at things that moved: a renamed module,
a dropped doc, a benchmark folded into another.  This tool walks
``README.md`` and every ``docs/*.md`` and verifies that

* every relative markdown link target (``[text](docs/foo.md)``,
  anchors and external URLs excluded) resolves to a real file, and
* every repo path named in prose or code spans — anything matching
  ``src/... docs/... tools/... tests/... benchmarks/... examples/...``
  — exists in the working tree (glob-ish mentions containing ``*``
  are skipped).

Exit status 0 when every reference resolves, 1 with one line per
dangling reference otherwise (CI-enforced).

Usage: python tools/check_docs_links.py [markdown-file ...]
"""

from __future__ import annotations

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: ``[text](target)`` markdown links (images included via the ``!``
#: prefix being irrelevant to the target capture).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Bare repo paths named in prose/code: a known top-level directory
#: followed by path characters.  The trailing ``[A-Za-z0-9_]`` keeps
#: sentence punctuation (``.``, ``/``) out of the match.
_REPO_PATH = re.compile(
    r"\b(?:src|docs|tools|tests|benchmarks|examples)"
    r"/[A-Za-z0-9_./*-]*[A-Za-z0-9_*]")


def _targets(text, base):
    """Yield ``(reference, resolved path or None)`` for every checkable
    reference in one document (``None`` marks a skipped reference:
    external URL, anchor, or glob)."""
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        target = target.split("#", 1)[0]
        if not target:                       # pure in-page anchor
            continue
        if "*" in target:
            continue
        # Root-relative targets (the repo convention) and
        # document-relative ones both resolve; accept either.
        candidates = [ROOT / target, base / target]
        yield target, candidates
    for match in _REPO_PATH.finditer(text):
        target = match.group(0)
        if "*" in target:                    # glob-ish mention
            continue
        yield target, [ROOT / target]


def check(paths):
    """Return a list of ``file: dangling reference`` report lines."""
    problems = []
    for path in paths:
        text = path.read_text()
        seen = set()
        for target, candidates in _targets(text, path.parent):
            if target in seen:
                continue
            seen.add(target)
            if not any(candidate.exists() for candidate in candidates):
                problems.append("{}: dangling reference {}".format(
                    path.relative_to(ROOT), target))
    return problems


def main(argv):
    """CLI entry point: check the given files, or the default doc set."""
    if argv[1:]:
        paths = [pathlib.Path(arg).resolve() for arg in argv[1:]]
    else:
        paths = [ROOT / "README.md"] + sorted(ROOT.glob("docs/*.md"))
    problems = check(paths)
    for line in problems:
        print(line)
    if problems:
        print("{} dangling reference(s)".format(len(problems)))
        return 1
    print("docs-link check: {} file(s) clean".format(len(paths)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
