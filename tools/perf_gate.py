#!/usr/bin/env python3
"""CI perf gate: fail the build when a tracked metric regresses.

``BENCH_HISTORY.json`` (see ``tools/bench_json.py``) carries the
machine-readable perf trajectory, one section per PR generation.  This
tool turns it from a passive artifact into an enforced floor: every
tracked metric in a freshly produced history must

1. hold its **asserted bound** — at or above the floor for
   higher-is-better metrics, at or below the ceiling for latency
   metrics (the same bound the bench itself asserts at default scale
   — the hard line), and
2. with ``--slack`` above zero, not collapse versus the **committed
   baseline** — the checked-in ``BENCH_HISTORY.json`` of the branch
   point.  The default slack is 0.0 (report the baseline next to each
   metric, never fail on it): the committed numbers come from a
   different machine class than the runner, so only an explicit slack
   turns the comparison into a gate.

Entries recorded at the ``small`` scale are skipped with a notice:
constant overheads dominate there and the benches themselves skip
their assertions.  A tracked metric missing from the fresh history is
an error — a silently vanished benchmark must not pass the gate.
Metrics marked ``always`` opt out of every bypass: they are enforced
at any scale and ignore ``gate: skip`` markers, so a scale-independent
single-core floor (like the ingest throughput) cannot silently vanish
on a 1-CPU runner.

Usage:

    python tools/perf_gate.py [--history BENCH_HISTORY.json]
                              [--baseline path/to/committed.json]
                              [--slack 0.5]

Exit status 0 when every tracked metric holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from dataclasses import dataclass

ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_HISTORY = ROOT / "BENCH_HISTORY.json"


@dataclass(frozen=True)
class TrackedMetric:
    """One enforced entry of the perf history.

    By default higher is better and ``bound`` is a floor; with
    ``ceiling=True`` lower is better (latency metrics) and ``bound``
    is an upper limit.  ``always=True`` removes every bypass: the
    metric is enforced even when its entry was recorded at the
    ``small`` scale or carries ``gate: skip`` — for scale-independent
    bounds that must hold on any runner, including 1-CPU CI machines.
    """

    section: str
    bench: str
    metric: str
    bound: float
    always: bool = False
    ceiling: bool = False

    @property
    def key(self):
        """The dotted name used in reports."""
        return "{}/{}/{}".format(self.section, self.bench, self.metric)


#: Every metric the gate enforces, with the bound its bench asserts.
TRACKED = (
    TrackedMetric("pr4", "cache_reopen", "reopen_speedup", 5.0),
    TrackedMetric("pr4", "frame_loop", "frame_speedup", 10.0),
    TrackedMetric("pr5", "sweep_scaling", "pool_speedup", 3.0),
    TrackedMetric("pr6", "ingest_throughput", "events_per_sec",
                  10_000.0, always=True),
    # ISSUE 8: interactivity ceilings of the persisted pyramids.  The
    # first frame after a reopen is default-scale gated (it includes
    # the mapped open); a deep-zoom frame is O(width) by construction,
    # so its ceiling is scale-independent and always enforced.
    TrackedMetric("pr8", "first_frame_reopen", "first_frame_reopen_ms",
                  1.0, ceiling=True),
    TrackedMetric("pr8", "deep_zoom_frame", "deep_zoom_frame_ms",
                  1.0, always=True, ceiling=True),
    # ISSUE 9: the durable engine wraps every sweep point in journal,
    # lease and CRC machinery; the per-trace analysis path must stay
    # fast regardless.  Fixed corpus, single core: scale-independent,
    # so the floor is enforced on any runner.
    TrackedMetric("pr9", "analyze_throughput", "events_per_sec",
                  50_000.0, always=True),
    # ISSUE 10: the multi-tenant service's shared mapped pool must
    # beat a per-request-reopen server by 5x at 16 concurrent
    # clients.  A threading server cannot overlap requests on one
    # CPU, so the bench records gate:skip there.
    TrackedMetric("pr10", "service_throughput", "pool_speedup", 5.0),
)


def _entry(history, tracked):
    """The payload dict of one tracked benchmark (None when absent)."""
    return history.get(tracked.section, {}).get(tracked.bench)


def check_history(history, baseline=None, slack=0.0):
    """Evaluate every tracked metric; returns (failures, lines).

    ``failures`` is a list of human-readable failure strings (empty
    when the gate passes); ``lines`` is the full per-metric report.
    ``baseline``, when given, is the committed history to diff
    against: with ``slack > 0``, a fresh value below
    ``baseline * slack`` fails even when it still clears the floor
    (at the default 0.0 the baseline is reported, never enforced —
    cross-machine speedups are not directly comparable).
    """
    failures = []
    lines = []
    for tracked in TRACKED:
        entry = _entry(history, tracked)
        if entry is None:
            failures.append("{}: missing from history (benchmark did "
                            "not run?)".format(tracked.key))
            continue
        if not tracked.always and entry.get("scale") == "small":
            lines.append("{}: skipped (recorded at small scale)"
                         .format(tracked.key))
            continue
        if not tracked.always and entry.get("gate") == "skip":
            lines.append("{}: skipped ({})".format(
                tracked.key, entry.get("gate_reason", "bench opted "
                                       "out")))
            continue
        value = entry.get(tracked.metric)
        if value is None:
            failures.append("{}: metric missing from payload"
                            .format(tracked.key))
            continue
        value = float(value)
        bound_kind = "ceiling" if tracked.ceiling else "floor"
        status = "{}: {:.2f} ({} {:.2f}".format(
            tracked.key, value, bound_kind, tracked.bound)
        if tracked.ceiling:
            if value > tracked.bound:
                failures.append(
                    "{}: {:.2f} is above the ceiling {:.2f}"
                    .format(tracked.key, value, tracked.bound))
        elif value < tracked.bound:
            failures.append("{}: {:.2f} is below the floor {:.2f}"
                            .format(tracked.key, value, tracked.bound))
        if baseline is not None:
            reference = _entry(baseline, tracked)
            # Baselines recorded at small scale or explicitly opted
            # out are not comparable to a default-scale fresh run —
            # the floor stays the only check then.  Always-enforced
            # metrics are scale-independent by contract, so their
            # baselines stay comparable.
            if not tracked.always and reference is not None and (
                    reference.get("scale") == "small"
                    or reference.get("gate") == "skip"):
                reference = None
            reference_value = (reference or {}).get(tracked.metric)
            if reference_value is not None:
                reference_value = float(reference_value)
                status += ", baseline {:.2f}".format(reference_value)
                if tracked.ceiling:
                    # Lower is better: allow the latency to grow to
                    # baseline / slack before calling it a collapse.
                    allowed = (reference_value / slack if slack > 0
                               else float("inf"))
                    if slack > 0 and value > allowed:
                        failures.append(
                            "{}: {:.2f} regressed above {:.2f} "
                            "(baseline {:.2f} / {}% slack)"
                            .format(tracked.key, value, allowed,
                                    reference_value, int(slack * 100)))
                else:
                    allowed = reference_value * slack
                    if slack > 0 and value < allowed:
                        failures.append(
                            "{}: {:.2f} regressed below {:.2f} "
                            "({}% of the committed baseline {:.2f})"
                            .format(tracked.key, value, allowed,
                                    int(slack * 100), reference_value))
        lines.append(status + ")")
    return failures, lines


def _load(path):
    """Parse one history file, with a clear error on failure."""
    try:
        return json.loads(pathlib.Path(path).read_text())
    except (OSError, ValueError) as error:
        raise SystemExit("perf-gate: cannot read {}: {}".format(path,
                                                                error))


def main(argv=None):
    """Command-line entry point; returns the exit status."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--history", default=str(DEFAULT_HISTORY),
                        help="freshly produced history to check")
    parser.add_argument("--baseline", default=None,
                        help="committed history to diff against")
    parser.add_argument("--slack", type=float, default=0.0,
                        help="fraction of the baseline value below "
                             "which a metric fails (0 = report only)")
    args = parser.parse_args(argv)
    history = _load(args.history)
    baseline = _load(args.baseline) if args.baseline else None
    failures, lines = check_history(history, baseline=baseline,
                                    slack=args.slack)
    for line in lines:
        print("perf-gate:", line)
    if failures:
        for failure in failures:
            print("perf-gate: FAIL:", failure)
        return 1
    print("perf-gate: {} tracked metric(s) ok".format(len(TRACKED)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
