#!/usr/bin/env python3
"""Docstring-presence lint for the public analysis-stack API.

Every public module, class, function and method in
``src/repro/trace_format/`` (including ``ingest/``),
``src/repro/analysis/`` (including ``experiments/``),
``src/repro/core/``, ``src/repro/render/``, ``src/repro/service/``
and ``src/repro/session.py`` must carry a docstring: these are the
layers external tools integrate against, so the documentation
contract is enforced in CI.  "Public" means the name does not start
with an underscore and the module is not private.

Exit status 0 when clean, 1 with one line per offender otherwise.

Usage: python tools/lint_docstrings.py [package-dir-or-file ...]
"""

from __future__ import annotations

import ast
import pathlib
import sys

DEFAULT_TARGETS = ("src/repro/trace_format", "src/repro/analysis",
                   "src/repro/core", "src/repro/render",
                   "src/repro/service", "src/repro/session.py")


def _is_public(name):
    return not name.startswith("_")


def _missing_docstrings(path):
    """Yield ``(lineno, description)`` for every public definition in
    ``path`` that lacks a docstring.

    Only module-level functions and classes, and the methods of public
    classes, are checked — helpers nested inside function bodies are
    implementation detail, not API surface.
    """
    tree = ast.parse(path.read_text(), filename=str(path))
    if ast.get_docstring(tree) is None:
        yield 1, "module"
    for node in tree.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
            continue
        if not _is_public(node.name):
            continue
        if ast.get_docstring(node) is None:
            kind = ("class" if isinstance(node, ast.ClassDef)
                    else "function")
            yield node.lineno, "{} {}".format(kind, node.name)
        if isinstance(node, ast.ClassDef):
            for member in node.body:
                if not isinstance(member, (ast.FunctionDef,
                                           ast.AsyncFunctionDef)):
                    continue
                if not _is_public(member.name):
                    continue
                if ast.get_docstring(member) is None:
                    yield member.lineno, "method {}.{}".format(
                        node.name, member.name)


def lint(targets=DEFAULT_TARGETS, root="."):
    """Collect offenders over ``targets``; returns a list of report
    lines (empty when everything is documented)."""
    problems = []
    for target in targets:
        base = pathlib.Path(root) / target
        paths = [base] if base.is_file() else sorted(base.rglob("*.py"))
        for path in paths:
            if path.name.startswith("_") and path.name != "__init__.py":
                continue
            for lineno, what in _missing_docstrings(path):
                problems.append("{}:{}: missing docstring for {}"
                                .format(path, lineno, what))
    return problems


def main(argv):
    targets = argv[1:] or list(DEFAULT_TARGETS)
    problems = lint(targets)
    for line in problems:
        print(line)
    if problems:
        print("{} public definition(s) without docstrings"
              .format(len(problems)))
        return 1
    print("docstring lint: {} target(s) clean".format(len(targets)))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
