#!/usr/bin/env python3
"""Machine-readable perf trajectory: merge benchmark timings into one
JSON history file at the repository root.

The per-figure benchmarks write human-readable series to
``benchmarks/results/``; this helper adds the machine-readable side —
a single ``BENCH_HISTORY.json`` with one section per PR generation
(``pr4``, ``pr5``, ...), each keyed by benchmark name with one flat
payload of timings/speedups per entry.  Benchmarks call :func:`record`
(the benchmarks ``conftest.py`` puts ``tools/`` on ``sys.path``); CI
uploads the file as a workflow artifact and ``tools/perf_gate.py``
fails the build when a tracked metric drops below its floor.

Concurrent writers are safe: the merge happens under an exclusive
``flock`` on a sidecar lock file, and the current contents are
re-read *inside* the lock — two bench modules recording at once can
never lose each other's (or an unrelated section's) top-level keys.

Run directly to pretty-print the current trajectory:

    python tools/bench_json.py
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib

try:
    import fcntl
except ImportError:                       # non-POSIX: degrade politely
    fcntl = None

ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_PATH = ROOT / "BENCH_HISTORY.json"

#: The default section new benchmarks record into.
CURRENT_SECTION = "pr5"


@contextlib.contextmanager
def _locked(path):
    """Hold an exclusive advisory lock tied to ``path`` (no-op where
    ``fcntl`` is unavailable).

    The sidecar lock file is removed on exit so interrupted benchmark
    runs stop littering ``*.json.lock`` files next to the history.
    Removal is only safe with revalidation: after acquiring the lock,
    the held descriptor must still be the file at ``lock_path`` — a
    concurrent holder may have unlinked it between our ``open`` and
    ``flock``, in which case we hold a lock nobody else can contend
    on and must retry on the fresh file.
    """
    if fcntl is None:
        yield
        return
    lock_path = path.with_suffix(path.suffix + ".lock")
    while True:
        lock = open(lock_path, "w")
        try:
            fcntl.flock(lock, fcntl.LOCK_EX)
            try:
                if os.fstat(lock.fileno()).st_ino \
                        == os.stat(lock_path).st_ino:
                    break
            except OSError:
                pass          # unlinked under us: retry
        except BaseException:
            lock.close()
            raise
        lock.close()
    try:
        yield
    finally:
        try:
            # Unlink while still holding the exclusive lock: a waiter
            # blocked in flock() wakes on the old inode, fails the
            # revalidation above, and retries on a fresh lock file.
            os.unlink(lock_path)
        except OSError:
            pass
        lock.close()


def _load(path):
    """The history dict currently on disk ({} when absent/corrupt)."""
    if not path.exists():
        return {}
    try:
        entries = json.loads(path.read_text())
    except ValueError:
        return {}
    return entries if isinstance(entries, dict) else {}


def record(name, payload, section=CURRENT_SECTION, path=None):
    """Merge ``{section: {name: payload}}`` into the history file.

    ``payload`` must be JSON-serializable (flat dicts of floats/ints/
    strings by convention).  Existing entries — under other names *and*
    other sections — are preserved; recording the same
    ``(section, name)`` twice overwrites that entry only.  The
    read-merge-write cycle runs under a file lock, so concurrent bench
    modules cannot clobber each other.  Returns the path written.
    """
    path = DEFAULT_PATH if path is None else pathlib.Path(path)
    with _locked(path):
        entries = _load(path)
        entries.setdefault(str(section), {})[str(name)] = payload
        path.write_text(json.dumps(entries, indent=2, sort_keys=True)
                        + "\n")
    return path


def load_history(path=None):
    """The full history dict (sections -> benchmark name -> payload)."""
    path = DEFAULT_PATH if path is None else pathlib.Path(path)
    return _load(path)


def main():
    """Pretty-print the current trajectory file."""
    if not DEFAULT_PATH.exists():
        print("no trajectory recorded yet:", DEFAULT_PATH)
        return
    print(DEFAULT_PATH)
    print(json.dumps(load_history(), indent=2, sort_keys=True))


if __name__ == "__main__":
    main()
