#!/usr/bin/env python3
"""Machine-readable perf trajectory: merge benchmark timings into a
JSON file at the repository root.

The per-figure benchmarks write human-readable series to
``benchmarks/results/``; this helper adds the machine-readable side —
a single ``BENCH_PR4.json`` keyed by benchmark name, with one flat
payload of timings/speedups per entry.  Benchmarks call
:func:`record` (the benchmarks ``conftest.py`` puts ``tools/`` on
``sys.path``); CI uploads the file as a workflow artifact, so every
run leaves a comparable perf datapoint.

Run directly to pretty-print the current trajectory:

    python tools/bench_json.py
"""

from __future__ import annotations

import json
import pathlib

ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_PATH = ROOT / "BENCH_PR4.json"


def record(name, payload, path=None):
    """Merge ``{name: payload}`` into the trajectory file.

    ``payload`` must be JSON-serializable (flat dicts of floats/ints/
    strings by convention).  Existing entries under other names are
    preserved; recording the same name twice overwrites it.  Returns
    the path written.
    """
    path = DEFAULT_PATH if path is None else pathlib.Path(path)
    entries = {}
    if path.exists():
        try:
            entries = json.loads(path.read_text())
        except ValueError:
            entries = {}
    entries[str(name)] = payload
    path.write_text(json.dumps(entries, indent=2, sort_keys=True) + "\n")
    return path


def main():
    if not DEFAULT_PATH.exists():
        print("no trajectory recorded yet:", DEFAULT_PATH)
        return
    print(DEFAULT_PATH)
    print(json.dumps(json.loads(DEFAULT_PATH.read_text()), indent=2,
                     sort_keys=True))


if __name__ == "__main__":
    main()
