#!/usr/bin/env python3
"""Regenerate the golden-trace regression fixtures in ``tests/data/``.

Two small canonical traces — a seidel-like stencil run and a
kmeans-like clustering run — are simulated deterministically, written
as indexed trace files, and their analysis results pinned to JSON.
``tests/test_golden.py`` recomputes the same numbers from the committed
files (through both trace stores) and fails on any numeric drift.

Run from the repository root after an *intentional* behaviour change:

    PYTHONPATH=src python tools/make_golden.py
"""

import json
import pathlib
import sys

DATA_DIR = pathlib.Path(__file__).resolve().parent.parent / "tests" / "data"

GOLDEN_TRACES = ("seidel", "kmeans")
#: Foreign-format fixture files and the registry source each must
#: dispatch to; both pin the same expectations (key "foreign").
FOREIGN_FIXTURES = {"golden_foreign.prv": "paraver",
                    "golden_foreign.json": "chrome"}
HISTOGRAM_BINS = 16


def build_golden_traces():
    """The two canonical traces, simulated deterministically."""
    from repro.runtime import (Machine, NumaAwareScheduler,
                               RandomStealScheduler, TraceCollector,
                               run_program)
    from repro.workloads import (KmeansConfig, SeidelConfig, build_kmeans,
                                 build_seidel)

    machine = Machine(4, 4, name="golden")
    __, seidel = run_program(
        build_seidel(machine, SeidelConfig(blocks=6, block_dim=16,
                                           steps=4)),
        RandomStealScheduler(machine, seed=7),
        collector=TraceCollector(machine))

    machine = Machine(4, 4, name="golden")
    __, kmeans = run_program(
        build_kmeans(machine, KmeansConfig(num_points=64_000,
                                           block_size=4_000,
                                           iterations=3)),
        NumaAwareScheduler(machine, seed=7),
        collector=TraceCollector(machine))
    return {"seidel": seidel, "kmeans": kmeans}


def build_foreign_trace():
    """A small hand-built trace for the foreign-format fixtures.

    Built directly through :class:`TraceBuilder` (no simulator), so the
    exact records are spelled out here.  Deliberately *without* memory
    accesses: the Paraver dialect cannot express them, and both foreign
    files must pin the same analysis numbers.
    """
    from repro.core import TaskTypeInfo, TopologyInfo, TraceBuilder

    topology = TopologyInfo(num_nodes=2, cores_per_node=2,
                            name="foreign")
    builder = TraceBuilder(topology)
    for type_id, name in enumerate(("compute", "reduce")):
        builder.describe_task_type(TaskTypeInfo(
            type_id=type_id, name=name, address=0,
            source_file="", source_line=0))
    cycles = builder.describe_counter("cycles")
    flops = builder.describe_counter("flops", monotone=False)
    task_id = 0
    for core in range(topology.num_cores):
        t = 1_000 * core
        for i in range(12):
            start, end = t, t + 400 + 37 * ((core + i) % 5)
            if i % 3 == 0:
                builder.state_interval(core, i % 6, start, end)
            else:
                builder.task_execution(task_id, task_id % 2, core,
                                       start, end)
                task_id += 1
            builder.counter_sample(core, cycles, start, float(start))
            builder.counter_sample(core, flops, start,
                                   float((i * 7) % 90))
            if i % 4 == 0:
                builder.discrete_event(core, i % 3, start, i)
            if i % 5 == 0:
                builder.comm_event(core,
                                   (core + 1) % topology.num_cores,
                                   start, size=64 * (i + 1),
                                   task_id=task_id - 1)
            t = end + 50
    return builder.build()


def golden_expectations(trace):
    """The pinned analysis results of one trace, as JSON-pure values.

    Every number here must be deterministic given the trace file's
    bytes — the regression test compares with exact equality.
    """
    from repro.core import metrics, statistics

    edges, fractions = statistics.task_duration_histogram(
        trace, bins=HISTOGRAM_BINS)
    mean, std = metrics.task_duration_stats(trace)
    return {
        "counts": {"states": len(trace.states),
                   "tasks": len(trace.tasks)},
        "time_range": [int(trace.begin), int(trace.end)],
        "state_time_summary": {
            str(state): int(cycles)
            for state, cycles in sorted(
                statistics.state_time_summary(trace).items())},
        "average_parallelism": float(
            statistics.average_parallelism(trace)),
        "locality_fraction": float(statistics.locality_fraction(trace)),
        "task_histogram_edges": [float(edge) for edge in edges],
        "task_histogram_fractions": [float(fraction)
                                     for fraction in fractions],
        "comm_matrix": statistics.communication_matrix(
            trace, normalize=False).tolist(),
        "steal_matrix": statistics.steal_matrix(trace).tolist(),
        "task_duration_stats": [float(mean), float(std)],
    }


def main():
    from repro.trace_format import export_chrome, export_paraver, \
        ingest_trace, write_trace

    DATA_DIR.mkdir(parents=True, exist_ok=True)
    expectations = {}
    for name, trace in build_golden_traces().items():
        path = DATA_DIR / "golden_{}.ost".format(name)
        records = write_trace(trace, str(path), index=True)
        expectations[name] = golden_expectations(trace)
        print("wrote {} ({} records, {} bytes)".format(
            path, records, path.stat().st_size))
    foreign = build_foreign_trace()
    export_paraver(foreign, str(DATA_DIR / "golden_foreign.prv"))
    export_chrome(foreign, str(DATA_DIR / "golden_foreign.json"))
    expectations["foreign"] = golden_expectations(foreign)
    for filename in FOREIGN_FIXTURES:
        ingested = golden_expectations(
            ingest_trace(str(DATA_DIR / filename)))
        if ingested != expectations["foreign"]:
            raise SystemExit("{} does not reproduce the pinned "
                             "foreign expectations".format(filename))
        print("wrote {} (ingestion verified)".format(
            DATA_DIR / filename))
    json_path = DATA_DIR / "golden_expectations.json"
    with open(json_path, "w") as stream:
        json.dump(expectations, stream, indent=1, sort_keys=True)
        stream.write("\n")
    print("wrote", json_path)


if __name__ == "__main__":
    sys.exit(main())
