#!/usr/bin/env python3
"""A command-line Aftermath: inspect, analyze and render trace files.

The GUI of the paper is replaced by subcommands over the same analysis
core.  Traces are the binary files written by
:func:`repro.trace_format.write_trace` (optionally .gz/.bz2/.xz) —
or any other registered format (Paraver ``.prv``, Chrome trace-event
JSON): every subcommand sniffs the input through the ingestion
registry, and ``ingest`` converts foreign files to native explicitly.

    python examples/aftermath_cli.py info trace.ost.gz
    python examples/aftermath_cli.py report trace.ost.gz --start 0 \
        --end 1000000
    python examples/aftermath_cli.py render trace.ost.gz out.ppm --mode heatmap
    python examples/aftermath_cli.py parallelism trace.ost.gz
    python examples/aftermath_cli.py matrix trace.ost.gz
    python examples/aftermath_cli.py export trace.ost.gz tasks.csv \
        --type seidel_block
    python examples/aftermath_cli.py dot trace.ost.gz graph.dot \
        --task 17 --hops 2
    python examples/aftermath_cli.py anomalies trace.ost.gz
    python examples/aftermath_cli.py profile trace.ost.gz
    python examples/aftermath_cli.py critical-path trace.ost.gz
    python examples/aftermath_cli.py task trace.ost.gz 17
    python examples/aftermath_cli.py compare base.ost cand.ost
    python examples/aftermath_cli.py sweep a.ost b.ost c.ost d.ost
    python examples/aftermath_cli.py sweep suite_dir --resume
    python examples/aftermath_cli.py queue-status suite_dir
    python examples/aftermath_cli.py ingest trace.prv trace.ost
    python examples/aftermath_cli.py serve --port 8737 --root traces/
    python examples/aftermath_cli.py info trace.ost \
        --remote http://127.0.0.1:8737

``serve`` starts the multi-tenant trace service
(:mod:`repro.service`); ``--remote URL`` on ``info`` / ``report`` /
``render`` runs the subcommand against such a server instead of
opening the trace locally — N analysts share one mapped trace
instead of N parses (docs/service-api.md).

(Generate a trace first, e.g. with examples/quickstart.py.)
"""

import argparse
import sys

from repro.core import (TaskTypeFilter, communication_matrix,
                        critical_path_report, describe_profile,
                        export_dot, export_task_table, interval_report,
                        reconstruct_task_graph, scan, symbols_from_trace,
                        task_details, task_type_profile)
from repro.render import (TIMELINE_MODES, TimelineView, matrix_to_text,
                          render_timeline, timeline_mode)
from repro.trace_format import (CacheError, FormatError, detect_source,
                                ingest_trace, read_trace,
                                registered_sources, write_trace)

def load_trace(args):
    """Open the trace of a subcommand through the ingestion registry,
    so every subcommand accepts any registered format (native,
    Paraver ``.prv``, Chrome JSON); ``--cache`` routes native opens
    through the memory-mapped ``.ostc`` sidecar (first use writes it,
    later runs map it back without re-parsing).  Unreadable or corrupt
    inputs surface as a one-line ``path: reason`` diagnostic, not a
    traceback."""
    try:
        if getattr(args, "cache", False) \
                and detect_source(args.trace).name == "native":
            return read_trace(args.trace, cache=True)
        return ingest_trace(args.trace)
    except FormatError as error:
        raise FormatError("{}: {}".format(args.trace, error))
    except OSError as error:
        raise FormatError("{}: {}".format(
            args.trace, error.strerror or error))


def remote_client(args):
    """The :class:`~repro.service.ServiceClient` behind ``--remote``,
    or ``None`` when the subcommand should open the trace locally."""
    url = getattr(args, "remote", None)
    if url is None:
        return None
    from repro.service import ServiceClient
    return ServiceClient(url)


def cmd_info(args):
    client = remote_client(args)
    if client is not None:
        reply = client.open(args.trace)
        view = reply["view"]
        print("remote trace {} (session {}, shared mapping: {})".format(
            reply["path"], reply["session"], reply["shared"]))
        print("cores: {}  duration: {} cycles".format(
            reply["cores"], reply["duration"]))
        print("view: [{}, {}] {}x{} px".format(
            view["start"], view["end"], view["width"], view["height"]))
        client.close(reply["session"])
        return
    trace = load_trace(args)
    print(trace)
    print("machine: {} ({} nodes x {} cores)".format(
        trace.topology.name, trace.topology.num_nodes,
        trace.topology.cores_per_node))
    print("time range: [{}, {}] ({} cycles)".format(
        trace.begin, trace.end, trace.duration))
    table = symbols_from_trace(trace)
    for info in trace.task_types:
        symbol = table.resolve(info.address)
        count = sum(1 for t in trace.tasks.columns["type_id"]
                    if t == info.type_id)
        print("  type {}: {} at 0x{:x} ({}:{}), {} executions".format(
            info.type_id, symbol.name, info.address, info.source_file,
            info.source_line, count))
    for description in trace.counter_descriptions:
        print("  counter {}: {}".format(description.counter_id,
                                        description.name))


def cmd_report(args):
    client = remote_client(args)
    if client is not None:
        opened = client.open(args.trace)
        window = {key: value for key, value in
                  (("start", args.start), ("end", args.end))
                  if value is not None}
        stats = client.stats(opened["session"], **window)
        print("remote interval [{}, {}]: {} tasks".format(
            stats["start"], stats["end"], stats["tasks"]))
        print("average parallelism: {:.3f}  locality: {:.3f}".format(
            stats["average_parallelism"], stats["locality"]))
        for state, cycles in sorted(stats["state_cycles"].items()):
            print("  {:12s} {:>16d} cycles".format(state, cycles))
        client.close(opened["session"])
        return
    trace = load_trace(args)
    print(interval_report(trace, args.start, args.end).describe())


def cmd_render(args):
    client = remote_client(args)
    if client is not None:
        cmd_render_remote(args, client)
        return
    trace = load_trace(args)
    view = TimelineView.fit(trace, args.width,
                            args.lane * trace.num_cores)
    if args.start is not None or args.end is not None:
        from dataclasses import replace
        view = replace(view,
                       start=args.start if args.start is not None
                       else trace.begin,
                       end=args.end if args.end is not None
                       else trace.end)
    framebuffer = render_timeline(trace, timeline_mode(args.mode), view)
    framebuffer.save_ppm(args.output)
    print("wrote {} ({}x{}, {} draw calls)".format(
        args.output, framebuffer.width, framebuffer.height,
        framebuffer.draw_calls))


def cmd_render_remote(args, client):
    """``render --remote``: rasterize on the server, save PNG here.

    The session's pixel geometry is fixed at ``open`` and the lane
    height needs the core count, so a first open reads the topology
    and the second (a pool hit — the mapping is already resident)
    opens at the final size.
    """
    import base64
    probe = client.open(args.trace)
    opened = client.open(args.trace, width=args.width,
                         height=args.lane * probe["cores"])
    client.close(probe["session"])
    if args.start is not None or args.end is not None:
        view = opened["view"]
        client.navigate(opened["session"], "goto",
                        start=args.start if args.start is not None
                        else view["start"],
                        end=args.end if args.end is not None
                        else view["end"])
    reply = client.render(opened["session"], mode=args.mode,
                          format="png")
    with open(args.output, "wb") as handle:
        handle.write(base64.b64decode(reply["png_base64"]))
    client.close(opened["session"])
    print("wrote {} ({}x{}, {} draw calls, png)".format(
        args.output, reply["width"], reply["height"],
        reply["draw_calls"]))


def cmd_parallelism(args):
    trace = load_trace(args)
    graph = reconstruct_task_graph(trace)
    depths, counts = graph.parallelism_profile()
    peak = counts.max() if len(counts) else 0
    print("depth  tasks")
    for depth, count in zip(depths, counts):
        bar = "#" * int(50 * count / peak) if peak else ""
        print("{:5d} {:6d} {}".format(int(depth), int(count), bar))


def cmd_matrix(args):
    trace = load_trace(args)
    print(matrix_to_text(communication_matrix(trace, kind=args.kind)))


def cmd_export(args):
    trace = load_trace(args)
    task_filter = TaskTypeFilter(args.type) if args.type else None
    counters = [d.name for d in trace.counter_descriptions]
    rows = export_task_table(trace, args.output, counters=counters,
                             task_filter=task_filter)
    print("exported {} rows to {}".format(rows, args.output))


def cmd_dot(args):
    trace = load_trace(args)
    graph = reconstruct_task_graph(trace)
    subset = (graph.neighborhood(args.task, args.hops)
              if args.task is not None else None)
    export_dot(graph, path=args.output, task_ids=subset, trace=trace)
    print("wrote", args.output)


def cmd_anomalies(args):
    trace = load_trace(args)
    findings = scan(trace)
    if not findings:
        print("no anomalies found")
        return
    for finding in findings:
        print("{:18s} severity {:6.2f}  [{} .. {})  {}".format(
            finding.kind, finding.severity, finding.start, finding.end,
            finding.description))


def cmd_profile(args):
    trace = load_trace(args)
    print(describe_profile(task_type_profile(trace)))


def cmd_critical_path(args):
    trace = load_trace(args)
    report = critical_path_report(trace)
    print(report.describe())
    if args.show_path:
        print("path:", " -> ".join(str(task) for task in report.path))


def cmd_task(args):
    trace = load_trace(args)
    print(task_details(trace, args.task_id).describe())


def cmd_ingest(args):
    """Normalize a foreign trace into the native indexed format."""
    source = (detect_source(args.trace) if args.format is None
              else next(s for s in registered_sources()
                        if s.name == args.format))
    trace = source.load(args.trace)
    records = write_trace(trace, args.output, index=True)
    print("ingested {} via {} source: {} cores, {} tasks".format(
        args.trace, source.name, trace.num_cores, len(trace.tasks)))
    print("wrote {} ({} records)".format(args.output, records))


def cmd_compare(args):
    """Diff a candidate trace against a baseline (experiment engine)."""
    from repro.analysis.experiments import (DiffTolerances,
                                            diff_trace_files)
    tolerances = DiffTolerances(relative=args.relative,
                                absolute=args.absolute,
                                distribution=args.distribution,
                                anomalies=args.anomalies)
    report = diff_trace_files(args.baseline, args.candidate,
                              tolerances=tolerances,
                              cache=not args.no_cache)
    print(report.describe())
    if args.json:
        report.to_json(args.json)
        print("wrote", args.json)
    if args.strict and not report.is_empty:
        sys.exit(1)


def cmd_sweep(args):
    """Analyze N traces through the pooled experiment engine and
    print the cross-trace summary table.  With ``--resume`` the single
    positional argument is a suite directory: its durable journal is
    drained first (completed points are never re-simulated), then the
    produced traces are analyzed."""
    import json as json_module

    from repro.analysis.experiments import analyze_traces, sweep_table
    if args.resume:
        if len(args.traces) != 1:
            from repro.analysis.experiments import QueueError
            raise QueueError("--resume takes exactly one suite "
                             "directory, got {}".format(len(args.traces)))
        from repro.analysis.experiments import resume_suite
        report = resume_suite(args.traces[0], workers=args.workers)
        print("resume: {}".format(report.describe()))
        print("re-simulated completed points: {}".format(
            report.resimulated))
        traces = [path for path in report.paths if path]
    else:
        traces = args.traces
    summaries = analyze_traces(traces, workers=args.workers,
                               cache=not args.no_cache)
    table = sweep_table(summaries, param=args.param)
    print(table.describe())
    best = table.best()
    print("\nbest duration: {} ({} cycles)".format(best.name,
                                                   best.duration))
    print("merged across {} traces: {} records, {} tasks".format(
        len(summaries),
        sum(summary.records for summary in summaries),
        sum(summary.tasks for summary in summaries)))
    if args.json:
        with open(args.json, "w") as stream:
            json_module.dump(table.to_dict(), stream, indent=2,
                             sort_keys=True)
            stream.write("\n")
        print("wrote", args.json)


def cmd_serve(args):
    """Serve traces over HTTP: the multi-tenant analysis service of
    :mod:`repro.service` in the foreground (Ctrl-C stops it)."""
    from repro.service import create_server
    server = create_server(host=args.host, port=args.port,
                           root=args.root,
                           pool_capacity=args.pool_capacity,
                           verbose=args.verbose)
    print("serving on {} (pool capacity {}{})".format(
        server.url, args.pool_capacity,
        ", root {}".format(args.root) if args.root else ""))
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.server_close()


def cmd_queue_status(args):
    """Show a suite directory's durable job journal: per-state counts
    plus one line per job (quarantined jobs show the last line of
    their captured traceback)."""
    from repro.analysis.experiments import describe_queue
    print(describe_queue(args.directory))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    commands = parser.add_subparsers(dest="command", required=True)

    def with_trace(name, handler, **extra):
        sub = commands.add_parser(name)
        sub.add_argument("trace")
        sub.add_argument("--cache", action="store_true",
                         help="open through the memory-mapped .ostc "
                              "sidecar (writes it on first use)")
        sub.set_defaults(handler=handler)
        return sub

    def with_remote(sub):
        sub.add_argument("--remote", default=None, metavar="URL",
                         help="run against an `aftermath_cli serve` "
                              "server instead of opening locally")
        return sub

    with_remote(with_trace("info", cmd_info))

    report = with_remote(with_trace("report", cmd_report))
    report.add_argument("--start", type=int, default=None)
    report.add_argument("--end", type=int, default=None)

    render = with_remote(with_trace("render", cmd_render))
    render.add_argument("output")
    render.add_argument("--mode", choices=sorted(TIMELINE_MODES),
                        default="state")
    render.add_argument("--width", type=int, default=1024)
    render.add_argument("--lane", type=int, default=4)
    render.add_argument("--start", type=int, default=None)
    render.add_argument("--end", type=int, default=None)

    with_trace("parallelism", cmd_parallelism)

    matrix = with_trace("matrix", cmd_matrix)
    matrix.add_argument("--kind", choices=("any", "read", "write"),
                        default="any")

    export = with_trace("export", cmd_export)
    export.add_argument("output")
    export.add_argument("--type", default=None)

    dot = with_trace("dot", cmd_dot)
    dot.add_argument("output")
    dot.add_argument("--task", type=int, default=None)
    dot.add_argument("--hops", type=int, default=2)

    with_trace("anomalies", cmd_anomalies)
    with_trace("profile", cmd_profile)

    critical = with_trace("critical-path", cmd_critical_path)
    critical.add_argument("--show-path", action="store_true")

    task = with_trace("task", cmd_task)
    task.add_argument("task_id", type=int)

    ingest = commands.add_parser(
        "ingest", help="convert any registered trace format to native")
    ingest.add_argument("trace", help="input file (.ost, .prv, .json)")
    ingest.add_argument("output", help="native indexed trace to write")
    ingest.add_argument("--format", default=None,
                        choices=sorted(source.name for source
                                       in registered_sources()),
                        help="force a source instead of sniffing")
    ingest.set_defaults(handler=cmd_ingest)

    compare = commands.add_parser(
        "compare", help="diff a candidate trace against a baseline")
    compare.add_argument("baseline")
    compare.add_argument("candidate")
    compare.add_argument("--relative", type=float, default=0.05,
                         help="relative tolerance on scalar metrics")
    compare.add_argument("--absolute", type=float, default=0.0,
                         help="absolute tolerance on zero-baseline "
                              "metrics")
    compare.add_argument("--distribution", type=float, default=0.1,
                         help="tolerated L1 histogram distance (0..2)")
    compare.add_argument("--anomalies", type=int, default=0,
                         help="tolerated per-kind anomaly-count delta")
    compare.add_argument("--json", default=None,
                         help="write the machine-readable report here")
    compare.add_argument("--strict", action="store_true",
                         help="exit 1 when any deviation is reported")
    compare.add_argument("--no-cache", action="store_true",
                         help="parse instead of using .ostc sidecars")
    compare.set_defaults(handler=cmd_compare)

    sweep = commands.add_parser(
        "sweep", help="pooled multi-trace analysis + summary table")
    sweep.add_argument("traces", nargs="+")
    sweep.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: all cores)")
    sweep.add_argument("--param", default=None,
                       help="sweep-parameter name for the key column")
    sweep.add_argument("--json", default=None,
                       help="write the machine-readable table here")
    sweep.add_argument("--no-cache", action="store_true",
                       help="parse instead of using .ostc sidecars")
    sweep.add_argument("--resume", action="store_true",
                       help="treat the argument as a suite directory: "
                            "drain its durable journal (completed "
                            "points are never re-simulated), then "
                            "analyze the produced traces")
    sweep.set_defaults(handler=cmd_sweep)

    status = commands.add_parser(
        "queue-status",
        help="show a suite directory's durable job journal")
    status.add_argument("directory")
    status.set_defaults(handler=cmd_queue_status)

    serve = commands.add_parser(
        "serve", help="serve traces over HTTP (the multi-tenant "
                      "analysis service)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8737)
    serve.add_argument("--root", default=None,
                       help="confine served paths to this directory")
    serve.add_argument("--pool-capacity", type=int, default=8,
                       help="resident mapped traces before LRU "
                            "eviction")
    serve.add_argument("--verbose", action="store_true",
                       help="log every request")
    serve.set_defaults(handler=cmd_serve)

    args = parser.parse_args(argv)
    try:
        args.handler(args)
    except Exception as error:
        from repro.analysis.experiments import ExperimentError
        from repro.service import ServiceError
        if not isinstance(error, (ExperimentError, FormatError,
                                  CacheError, ServiceError,
                                  ConnectionError, FileNotFoundError,
                                  IsADirectoryError, NotADirectoryError,
                                  PermissionError)):
            raise
        # Expected failure modes (unreadable trace, corrupt cache,
        # quarantined sweep, missing journal) exit with a short
        # diagnostic instead of a raw worker traceback.
        message = str(error).strip() or type(error).__name__
        print("aftermath_cli: {}".format(message), file=sys.stderr)
        sys.exit(1)


if __name__ == "__main__":
    main()
