#!/usr/bin/env python3
"""Schedule analysis of a blocked Cholesky factorization.

Cholesky's four kernels make a rich dependent-task DAG — the kind of
"arbitrary dependence patterns" the paper's introduction motivates.
This example runs it on a simulated NUMA machine and walks the
schedule-quality toolbox:

1. typemap rendering (which kernel runs where, Fig. 9 style);
2. the per-type execution profile;
3. the duration-weighted critical path: maximum achievable speedup and
   how close the work-stealing schedule came to the bound;
4. scheduling delays (ready-to-start gaps);
5. an analysis session: zoom onto the critical path's tail, annotate
   it, and save the session for a colleague.

Run:  python examples/cholesky_schedule_study.py [output-directory]
"""

import sys

import numpy as np

from repro.core import (critical_path_report, describe_profile,
                        reconstruct_task_graph, scheduling_delays,
                        task_type_profile)
from repro.render import TimelineView, TypeMode, render_timeline
from repro.runtime import (Machine, NumaAwareScheduler, TraceCollector,
                           run_program)
from repro.session import AnalysisSession
from repro.workloads import CholeskyConfig, build_cholesky


def main(output_dir="."):
    machine = Machine(num_nodes=4, cores_per_node=8, name="chol-study")
    config = CholeskyConfig(blocks=12, block_dim=48)
    program = build_cholesky(machine, config)
    print("cholesky: {} tasks over a {}x{} tile grid".format(
        len(program.tasks), config.blocks, config.blocks))

    collector = TraceCollector(machine)
    result, trace = run_program(program,
                                NumaAwareScheduler(machine, seed=3),
                                collector=collector)
    print("makespan: {:.2f} Mcycles on {} cores".format(
        result.makespan / 1e6, machine.num_cores))

    # 1. Typemap: one color per kernel.
    view = TimelineView.fit(trace, 1024, 4 * trace.num_cores)
    framebuffer = render_timeline(trace, TypeMode(), view)
    image = "{}/cholesky_typemap.ppm".format(output_dir)
    framebuffer.save_ppm(image)
    print("typemap written to", image)

    # 2. Where does the time go?
    print("\nper-kernel profile:")
    print(describe_profile(task_type_profile(trace)))

    # 3. Critical path and schedule quality.
    graph = reconstruct_task_graph(trace)
    report = critical_path_report(trace, graph)
    print("\n" + report.describe())

    # 4. Scheduling delays.
    delays = scheduling_delays(trace, graph)
    values = np.asarray(list(delays.values()), dtype=float)
    print("scheduling delays: median {:.0f} cycles, p95 {:.0f}, "
          "max {:.0f}".format(np.median(values),
                              np.percentile(values, 95), values.max()))

    # 5. Zoom onto the tail of the critical path and annotate it.
    session = AnalysisSession(trace, width=1024,
                              height=4 * trace.num_cores)
    tail_task = trace.task_by_id(report.path[-1])
    session.goto(tail_task.start - tail_task.duration, tail_task.end)
    session.annotate("critical path ends here (task {})".format(
        tail_task.task_id), core=tail_task.core, author="example")
    session_path = "{}/cholesky_session.json".format(output_dir)
    session.save(session_path)
    print("analysis session saved to", session_path)


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
