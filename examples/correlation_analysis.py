#!/usr/bin/env python3
"""The Section V walkthrough: correlating performance indicators.

Reproduces the branch-misprediction investigation in k-means:

1. the duration histogram of the main computation tasks shows several
   peaks although the workloads are identical (Fig. 16);
2. per-task attribution of the branch-misprediction counter (sampled
   at task boundaries) and export to CSV for external analysis;
3. least-squares regression of duration on misprediction rate — the
   paper reports a coefficient of determination of 0.83 (Fig. 19);
4. the fix (unconditional update, check hoisted out of the loop)
   collapses both the mean and the spread.

Run:  python examples/correlation_analysis.py [output-directory]
"""

import sys

from repro.core import (DurationFilter, TaskTypeFilter,
                        duration_vs_counter_rate, export_task_table,
                        task_duration_histogram, task_duration_stats)
from repro.experiments import kmeans_trace
from repro.render import histogram_to_text


def main(output_dir="."):
    compute = TaskTypeFilter("kmeans_distance")
    no_outliers = compute & DurationFilter(minimum=1_000_000)

    print("running k-means (conditional update in the inner loop) ...")
    __, baseline = kmeans_trace(block_size=10_000, seed=3)

    # 1. Duration histogram of the computation tasks (Fig. 16).
    edges, fractions = task_duration_histogram(baseline, bins=20,
                                               task_filter=compute)
    print("\nduration histogram of kmeans_distance tasks:")
    print(histogram_to_text(edges, fractions))

    # 2. Export per-task duration + counter increases (the paper feeds
    #    this file to SciPy; we do the same below).
    csv_path = "{}/kmeans_tasks.csv".format(output_dir)
    rows = export_task_table(baseline, csv_path,
                             counters=("branch_mispredictions",
                                       "cache_misses"),
                             task_filter=no_outliers)
    print("\nexported {} task rows to {}".format(rows, csv_path))

    # 3. Regression of duration on misprediction rate (Fig. 19).
    rates, durations, regression = duration_vs_counter_rate(
        baseline, "branch_mispredictions", no_outliers)
    print("regression:", regression.describe())
    print("(paper: R^2 = 0.83)")

    # 4. Apply the branch optimization and compare.
    print("\nrunning k-means with the unconditional-update fix ...")
    __, fixed = kmeans_trace(block_size=10_000, optimize_branches=True,
                             seed=3)
    base_mean, base_std = task_duration_stats(baseline, no_outliers)
    fix_mean, fix_std = task_duration_stats(fixed, no_outliers)
    print("mean task duration: {:.2f}M -> {:.2f}M cycles "
          "(paper: 9.76M -> 7.73M)".format(base_mean / 1e6,
                                           fix_mean / 1e6))
    print("standard deviation: {:.2f}M -> {:.0f}K cycles "
          "(paper: 1.18M -> 335K)".format(base_std / 1e6,
                                          fix_std / 1e3))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
