#!/usr/bin/env python3
"""Quickstart: simulate a task-parallel run, trace it, analyze it.

Walks the full pipeline in five steps:

1. build a NUMA machine and the seidel task graph;
2. execute it on the simulated work-stealing run-time with tracing;
3. compute statistics and derived metrics (Aftermath's core);
4. render the timeline in state mode to a PPM image;
5. save the trace to a compressed file and load it back.

Run:  python examples/quickstart.py [output-directory]
"""

import sys

from repro.core import (WorkerState, average_parallelism, interval_report,
                        reconstruct_task_graph, state_count_series)
from repro.render import StateMode, TimelineView, render_timeline
from repro.runtime import (Machine, RandomStealScheduler, TraceCollector,
                           run_program)
from repro.trace_format import read_trace, write_trace
from repro.workloads import SeidelConfig, build_seidel


def main(output_dir="."):
    # 1. A machine with 4 NUMA nodes x 8 cores, and a blocked 2-D
    #    stencil: 12x12 blocks of 64x64 doubles, 8 Gauss-Seidel sweeps.
    machine = Machine(num_nodes=4, cores_per_node=8, name="quickstart")
    program = build_seidel(machine, SeidelConfig(blocks=12, block_dim=64,
                                                 steps=8))
    print("machine:", machine)
    print("program:", program)

    # 2. Execute under random work-stealing, collecting a trace.
    collector = TraceCollector(machine)
    result, trace = run_program(program,
                                RandomStealScheduler(machine, seed=42),
                                collector=collector)
    print("makespan: {:.1f} Mcycles, {} steals, {} page faults".format(
        result.makespan / 1e6, result.steals, result.page_faults))

    # 3. Statistics for the whole execution.
    print()
    print(interval_report(trace).describe())
    print("average parallelism: {:.1f} of {} cores".format(
        average_parallelism(trace), machine.num_cores))
    __, idle = state_count_series(trace, WorkerState.IDLE, 100)
    print("peak idle workers: {:.0f}".format(idle.max()))
    graph = reconstruct_task_graph(trace)
    __, counts = graph.parallelism_profile()
    print("task graph: {} tasks, {} edges, critical path {} edges, "
          "peak available parallelism {}".format(
              len(graph.nodes), graph.num_edges,
              graph.critical_path_length(), counts.max()))

    # 4. Render the state timeline.
    view = TimelineView.fit(trace, width=1024,
                            height=4 * trace.num_cores)
    framebuffer = render_timeline(trace, StateMode(), view)
    image_path = "{}/quickstart_states.ppm".format(output_dir)
    framebuffer.save_ppm(image_path)
    print("\ntimeline written to", image_path)

    # 5. Round-trip through the compressed binary trace format.
    trace_path = "{}/quickstart.ost.gz".format(output_dir)
    records = write_trace(trace, trace_path)
    reloaded = read_trace(trace_path)
    print("trace file: {} records -> {}".format(records, trace_path))
    print("reloaded: {} (identical task count: {})".format(
        reloaded, len(reloaded.tasks) == len(trace.tasks)))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
