#!/usr/bin/env python3
"""Quickstart: simulate a task-parallel run, trace it, analyze it.

This script is the runnable version of the README's quickstart.  It
walks the full pipeline in twelve steps:

1. build a NUMA machine and the seidel task graph;
2. execute it on the simulated work-stealing run-time with tracing;
3. compute statistics and derived metrics (Aftermath's core);
4. render the timeline in state mode to a PPM image;
5. save the trace to a compressed file and load it back;
6. process the trace file *out-of-core*: a constant-memory streaming
   pass, the sharded parallel equivalent, and a seek-to-window
   extraction through the chunk index — the paths that keep working
   when the trace no longer fits in RAM (docs/architecture.md);
7. convert to the *columnar store* — one structured array per core
   per record kind — and run the same statistics on it, vectorized;
8. write the *memory-mapped columnar cache* (the ``.ostc`` sidecar)
   and reopen the trace through it: the second open maps the arrays
   back instead of re-parsing, so an interactive session restarts in
   milliseconds;
9. run a *two-trace compare* through the experiment engine: a second
   run under another stealing seed is diffed against the first
   (state-time deltas, distribution shifts, anomaly counts) and both
   timelines render side by side on one shared time axis;
10. go *format-plural*: export the trace as Paraver ``.prv`` and
    Chrome trace-event JSON, ingest both back through the trace-source
    registry (which sniffs the format), and check the statistics
    match the native store — the analyses are runtime- and
    format-agnostic;
11. survive a *crash mid-sweep*: every point of a parameter sweep is
    a job in a durable SQLite journal next to the traces, so a sweep
    interrupted partway resumes from the journal alone and never
    re-simulates a completed point (docs/architecture.md, "Failure
    modes & recovery");
12. *serve* the trace over HTTP: the multi-tenant analysis service
    maps the ``.ostc`` sidecar once and every client session shares
    that one store — two clients open the same trace, the second open
    is a pool hit, and both see identical statistics
    (docs/service-api.md).

Run:  python examples/quickstart.py [output-directory]
"""

import os
import sys
import time

from repro.analysis import parallel_streaming_statistics
from repro.core import (WorkerState, average_parallelism, interval_report,
                        reconstruct_task_graph, state_count_series,
                        traces_equal)
from repro.render import StateMode, TimelineView, render_timeline
from repro.runtime import (Machine, RandomStealScheduler, TraceCollector,
                           run_program)
from repro.trace_format import (ScanStats, default_cache_path, read_trace,
                                split_time_window, streaming_statistics,
                                write_trace)
from repro.workloads import SeidelConfig, build_seidel


def main(output_dir="."):
    os.makedirs(output_dir, exist_ok=True)
    # 1. A machine with 4 NUMA nodes x 8 cores, and a blocked 2-D
    #    stencil: 12x12 blocks of 64x64 doubles, 8 Gauss-Seidel sweeps.
    machine = Machine(num_nodes=4, cores_per_node=8, name="quickstart")
    program = build_seidel(machine, SeidelConfig(blocks=12, block_dim=64,
                                                 steps=8))
    print("machine:", machine)
    print("program:", program)

    # 2. Execute under random work-stealing, collecting a trace.
    collector = TraceCollector(machine)
    result, trace = run_program(program,
                                RandomStealScheduler(machine, seed=42),
                                collector=collector)
    print("makespan: {:.1f} Mcycles, {} steals, {} page faults".format(
        result.makespan / 1e6, result.steals, result.page_faults))

    # 3. Statistics for the whole execution.
    print()
    print(interval_report(trace).describe())
    print("average parallelism: {:.1f} of {} cores".format(
        average_parallelism(trace), machine.num_cores))
    __, idle = state_count_series(trace, WorkerState.IDLE, 100)
    print("peak idle workers: {:.0f}".format(idle.max()))
    graph = reconstruct_task_graph(trace)
    __, counts = graph.parallelism_profile()
    print("task graph: {} tasks, {} edges, critical path {} edges, "
          "peak available parallelism {}".format(
              len(graph.nodes), graph.num_edges,
              graph.critical_path_length(), counts.max()))

    # 4. Render the state timeline.
    view = TimelineView.fit(trace, width=1024,
                            height=4 * trace.num_cores)
    framebuffer = render_timeline(trace, StateMode(), view)
    image_path = "{}/quickstart_states.ppm".format(output_dir)
    framebuffer.save_ppm(image_path)
    print("\ntimeline written to", image_path)

    # 5. Round-trip through the compressed binary trace format.
    trace_path = "{}/quickstart.ost.gz".format(output_dir)
    records = write_trace(trace, trace_path)
    reloaded = read_trace(trace_path)
    print("trace file: {} records -> {}".format(records, trace_path))
    print("reloaded: {} (identical task count: {})".format(
        reloaded, len(reloaded.tasks) == len(trace.tasks)))

    # 6. The out-of-core path: the same analyses straight from the
    #    file, in bounded memory.  Uncompressed files get a seekable
    #    chunk index, so extracting a window of a huge trace reads
    #    only the chunks that overlap it.
    indexed_path = "{}/quickstart.ost".format(output_dir)
    write_trace(trace, indexed_path)
    stats = streaming_statistics(indexed_path)
    print("\nstreaming pass:", stats.describe().splitlines()[0])
    parallel = parallel_streaming_statistics(indexed_path)
    print("parallel map-reduce identical to serial pass:",
          parallel == stats)
    scan = ScanStats()
    window = split_time_window(indexed_path, trace.begin,
                               trace.begin + trace.duration // 10,
                               stats=scan)
    print("10% window: {} tasks, read {:.1%} of the file's bytes"
          .format(len(window.tasks),
                  scan.bytes_read / os.path.getsize(indexed_path)))

    # 7. The columnar store: the paper's "one array per core and per
    #    type of event" as numpy structured arrays.  Conversion is
    #    lossless both ways, files load straight into it, and every
    #    analysis accepts either store with identical results.
    columnar = trace.to_columnar()
    print("\ncolumnar store:", repr(columnar))
    print("core 0 executed {} tasks, first lane entry: {}".format(
        len(columnar.tasks.lane(0)), columnar.tasks.lane(0)[:1]))
    same = interval_report(columnar).describe() \
        == interval_report(trace).describe()
    print("columnar statistics identical to object statistics:", same)
    reloaded_columnar = read_trace(indexed_path, columnar=True)
    print("columnar reload matches conversion:",
          traces_equal(reloaded_columnar, columnar))

    # 8. The memory-mapped columnar cache: the first cache-enabled
    #    open parses once and writes the .ostc sidecar; every later
    #    open maps it back without parsing (and a windowed query
    #    touches only the pages its binary-searched slices cover).
    read_trace(indexed_path, cache=True)          # writes the sidecar
    t0 = time.perf_counter()
    mapped = read_trace(indexed_path, cache=True)  # maps it back
    reopen_ms = 1e3 * (time.perf_counter() - t0)
    print("\nmapped cache sidecar:", default_cache_path(indexed_path))
    print("cache reopen in {:.1f} ms; matches parsed store: {}".format(
        reopen_ms, traces_equal(mapped, columnar)))
    window = mapped.slice_time_window(trace.begin,
                                      trace.begin + trace.duration // 10)
    print("zero-copy 10% window: {} tasks".format(len(window.tasks)))

    # 9. Compare two runs: the same workload under a different
    #    stealing seed, diffed through the experiment engine (the
    #    layer behind `aftermath_cli compare` / `sweep`).  The program
    #    is rebuilt so the second run first-touches its own pages —
    #    reusing the executed one would inherit run 1's placements.
    #    A self-diff is empty; two real runs deviate, and the report
    #    says exactly where.
    from repro.analysis.experiments import (
        diff_traces, render_timelines_side_by_side)
    rebuilt = build_seidel(machine, SeidelConfig(blocks=12,
                                                 block_dim=64, steps=8))
    __, other = run_program(rebuilt,
                            RandomStealScheduler(machine, seed=7),
                            collector=TraceCollector(machine))
    report = diff_traces(trace, other, baseline_name="seed42",
                         candidate_name="seed7")
    print("\ntwo-trace compare (seed 42 vs seed 7):")
    print("self-diff empty: {}".format(
        diff_traces(trace, trace).is_empty))
    print("deviations beyond tolerance: {}".format(len(report)))
    for entry in report.entries[:3]:
        print("  " + entry.describe())
    panel = render_timelines_side_by_side([trace, other], width=1024,
                                          lane_height=2)
    panel_path = "{}/quickstart_compare.ppm".format(output_dir)
    panel.save_ppm(panel_path)
    print("side-by-side comparison written to", panel_path)

    # 10. Format-plural ingestion: the same trace through foreign
    #     formats.  Paraver drops memory accesses (documented lossy),
    #     so the parity check compares statistics; the Chrome JSON
    #     round trip is exact, so it checks full store equality.
    from repro.core import state_time_summary
    from repro.trace_format import (detect_source, export_chrome,
                                    export_paraver, ingest_trace)
    prv_path = "{}/quickstart.prv".format(output_dir)
    json_path = "{}/quickstart.json".format(output_dir)
    export_paraver(trace, prv_path)
    export_chrome(trace, json_path)
    print("\ningestion registry: {} -> {}, {} -> {}".format(
        os.path.basename(prv_path), detect_source(prv_path).name,
        os.path.basename(json_path), detect_source(json_path).name))
    from_paraver = ingest_trace(prv_path)
    from_chrome = ingest_trace(json_path)
    print("paraver round trip keeps state times:",
          state_time_summary(from_paraver) == state_time_summary(trace))
    print("chrome round trip is exact:",
          traces_equal(from_chrome, trace))

    # 11. Crash-resilient sweeps: run_suite journals every point in
    #     the suite directory's journal.sqlite before simulating it.
    #     The max_jobs seam stands in for a crash — stop the drain
    #     after 2 of 4 points — and resume_suite finishes the sweep
    #     from the journal alone, re-simulating nothing that
    #     completed.
    from repro.analysis.experiments import (resume_suite, run_suite,
                                            synthetic_sweep)
    suite_dir = "{}/quickstart_suite".format(output_dir)
    specs = synthetic_sweep(4, events=2_000)
    run_suite(specs, suite_dir, workers=1, max_jobs=2)  # "crash" here
    report = resume_suite(suite_dir, workers=1)
    print("\ncrash-resumable sweep: {} of {} points survived the "
          "interruption".format(report.done_before, len(specs)))
    print("resumed sweep re-simulated completed points:",
          report.resimulated)
    print("sweep complete: {} of {} traces".format(
        report.counts["done"], len(specs)))

    # 12. The serving layer: the same store over HTTP.  Two clients
    #     open the same trace file; the pool parses it once, the
    #     second open is a hit on the resident mapping, and both
    #     sessions answer with identical statistics (the layer behind
    #     `aftermath_cli serve` and `--remote`).
    from repro.service import ServiceClient, start_server
    server = start_server(width=256, height=64)
    try:
        viewer = ServiceClient(server.url)
        analyst = ServiceClient(server.url)
        first = viewer.open(indexed_path)
        second = analyst.open(indexed_path)
        print("\ntrace service at {}".format(server.url))
        print("shared mapping on second open:", second["shared"])
        stats_a = viewer.stats(first["session"])
        stats_b = analyst.stats(second["session"])
        stats_a.pop("session"), stats_b.pop("session")
        print("stats identical across clients:", stats_a == stats_b)
    finally:
        server.shutdown()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
