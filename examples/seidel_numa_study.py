#!/usr/bin/env python3
"""The Section IV walkthrough: NUMA locality, non-optimized vs optimized.

Runs seidel twice — once with the NUMA-oblivious run-time (random
work-stealing + random page placement) and once with the NUMA-aware one
(locality-first scheduling + first-touch placement) — and reproduces
the paper's locality views:

* NUMA read/write maps and the NUMA heatmap (Fig. 14), written as PPM
  images;
* the communication incidence matrix (Fig. 15), printed as ASCII;
* the end-to-end speedup (paper: 3.05x on the 24-node UV2000).

Run:  python examples/seidel_numa_study.py [output-directory]
"""

import sys

from repro.core import (average_remote_fraction, communication_matrix,
                        locality_fraction)
from repro.experiments import seidel_trace
from repro.render import (NumaHeatmapMode, NumaMode, TimelineView,
                          matrix_to_text, render_timeline)


def render_views(trace, label, output_dir):
    view = TimelineView.fit(trace, width=1024,
                            height=4 * trace.num_cores)
    for mode in (NumaMode("read"), NumaMode("write"), NumaHeatmapMode()):
        framebuffer = render_timeline(trace, mode, view)
        path = "{}/seidel_{}_{}.ppm".format(output_dir, label, mode.name)
        framebuffer.save_ppm(path)
        print("  wrote", path)


def main(output_dir="."):
    runs = {}
    for label, optimized in (("nonopt", False), ("opt", True)):
        print("running seidel,", "optimized" if optimized
              else "non-optimized", "run-time ...")
        result, trace = seidel_trace(optimized=optimized, seed=7,
                                     collect_rusage=False)
        runs[label] = (result, trace)
        render_views(trace, label, output_dir)

    non_result, non_trace = runs["nonopt"]
    opt_result, opt_trace = runs["opt"]

    print("\ncommunication incidence matrix, non-optimized "
          "(fraction of bytes):")
    print(matrix_to_text(communication_matrix(non_trace)))
    print("\ncommunication incidence matrix, optimized:")
    print(matrix_to_text(communication_matrix(opt_trace)))

    print("\nlocal-access fraction: {:.1%} -> {:.1%}".format(
        locality_fraction(non_trace), locality_fraction(opt_trace)))
    print("remote-access fraction: {:.1%} -> {:.1%}".format(
        average_remote_fraction(non_trace),
        average_remote_fraction(opt_trace)))
    print("execution time: {:.2f} -> {:.2f} Mcycles  "
          "(speedup {:.2f}x; paper: 3.05x)".format(
              non_result.makespan / 1e6, opt_result.makespan / 1e6,
              non_result.makespan / opt_result.makespan))


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else ".")
