#!/usr/bin/env python3
"""Semi-automatic anomaly hunting (the paper's announced follow-up).

Instead of visually scanning timelines, run the anomaly detectors over
a trace and let them point at the intervals worth inspecting:

1. simulate seidel under the non-optimized run-time (it has all the
   problems at once: idle phases, slow init, poor locality);
2. `scan()` the trace and print the ranked findings;
3. cross-check the findings against the manual analyses: the idle
   bands of Fig. 2/3, the init outliers of Fig. 7/8, the remote-access
   phases of Fig. 14;
4. run the automated counter-correlation ranking on k-means, which
   singles out branch mispredictions — the Section V conclusion —
   without being told where to look.

Run:  python examples/anomaly_hunt.py
"""

from repro.core import TaskTypeFilter, correlate_counters, scan
from repro.experiments import kmeans_trace, seidel_trace


def main():
    print("simulating seidel under the non-optimized run-time ...")
    __, trace = seidel_trace(optimized=False, seed=11)

    findings = scan(trace, num_intervals=100)
    print("\n{} findings:".format(len(findings)))
    by_kind = {}
    for finding in findings:
        by_kind.setdefault(finding.kind, []).append(finding)
    for kind, group in sorted(by_kind.items()):
        print("\n  [{}] {} finding(s); top 3:".format(kind, len(group)))
        for finding in group[:3]:
            where = " cores {}".format(finding.cores) \
                if finding.cores else ""
            print("    severity {:.2f} at {:.0%}..{:.0%} of the "
                  "execution{}: {}".format(
                      finding.severity,
                      (finding.start - trace.begin) / trace.duration,
                      (finding.end - trace.begin) / trace.duration,
                      where, finding.description))

    print("\nsimulating k-means and ranking all counters against task "
          "duration ...")
    __, kmeans = kmeans_trace(block_size=10_000, seed=11)
    ranking = correlate_counters(
        kmeans, task_filter=TaskTypeFilter("kmeans_distance"))
    print("counter correlation ranking (positive slopes only):")
    for entry in ranking:
        print("  {:28s} R^2 = {:.3f}  ({} tasks)".format(
            entry.counter, entry.r_squared, entry.samples))
    if ranking:
        print("-> the detector singles out {!r}, the Section V "
              "culprit".format(ranking[0].counter))


if __name__ == "__main__":
    main()
