#!/usr/bin/env python3
"""The Section III-C walkthrough: adjusting task granularity in k-means.

Sweeps the block size (the number of points per distance-calculation
task) and reports execution time and worker-state breakdowns,
reproducing the trade-off of Fig. 12/13: huge blocks starve the
machine, tiny blocks drown it in task-management overhead.

Run:  python examples/kmeans_granularity.py
"""

from repro.core import WorkerState
from repro.experiments import (kmeans_machine, kmeans_makespan,
                               kmeans_trace)


def main():
    machine = kmeans_machine()
    cores = machine.num_cores
    num_points = 1_024_000
    block_counts = [cores // 2, cores, cores * 4, cores * 16,
                    cores * 64, cores * 256]

    print("k-means granularity sweep: {} points, {} cores".format(
        num_points, cores))
    print("{:>8s} {:>10s} {:>14s} {:>8s}".format(
        "blocks", "block_size", "cycles", "ratio"))
    makespans = {}
    for m in block_counts:
        block_size = num_points // m
        makespans[m] = kmeans_makespan(block_size, machine=machine,
                                       num_points=num_points, seed=5)
    best = min(makespans.values())
    for m in block_counts:
        print("{:8d} {:10d} {:14d} {:7.2f}x".format(
            m, num_points // m, makespans[m], makespans[m] / best))

    # State breakdown for the two pathological extremes and the sweet
    # spot, the quantitative view of Fig. 13's timelines.
    print("\nworker-state breakdown (fraction of core-cycles):")
    for label, m in (("starved (huge blocks)", cores // 2),
                     ("sweet spot", cores * 16),
                     ("overhead-bound (tiny)", cores * 256)):
        result, trace = kmeans_trace(
            machine=machine, block_size=num_points // m, seed=5,
            collect_accesses=False)
        total = result.makespan * trace.num_cores
        shares = {
            WorkerState(state).name: cycles / total
            for state, cycles in sorted(result.state_cycles.items())
            if cycles > 0
        }
        breakdown = ", ".join("{} {:.1%}".format(name, share)
                              for name, share in shares.items())
        print("  {:24s} m={:6d}: {}".format(label, m, breakdown))


if __name__ == "__main__":
    main()
